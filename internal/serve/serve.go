// Package serve is the long-lived mapping service behind cmd/jem-serve:
// an HTTP/JSON daemon that holds one or more open sharded sketch
// indexes hot and serves concurrent mapping sessions over them.
//
// It is the network tier over the jem facade — everything below it
// (sealed sharded index, context-first Stream with per-run Stats,
// cancellation, quarantine, fault injection, the obs registry) is
// reused as-is:
//
//	POST /v1/map[/{index}]        FASTA/FASTQ batch in, TSV or NDJSON out (streamed)
//	GET  /v1/indexes              loaded references + per-index memory accounting
//	POST /v1/indexes/{name}/swap  hot-swap a rebuilt index; drains the old generation
//	GET  /healthz                 liveness (process up)
//	GET  /readyz                  readiness (≥1 index loaded, not draining)
//	GET  /metrics, /statusz, /debug/vars, /debug/pprof/*   (obs registry)
//
// Concurrency control is explicit: at most MaxInFlight requests map
// concurrently, MaxQueue more wait (deadline-aware), and overflow is
// rejected with 429 — see admission.go. Each request runs under its
// own deadline (?timeout, capped by MaxTimeout) and its records flow
// through the facade's pipelined micro-batching (64-read batches on
// persistent per-worker sessions), so concurrent small requests keep
// the workers hot without any cross-request state. See
// docs/SERVING.md.
package serve

import (
	"compress/gzip"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"time"

	"repro"
	"repro/internal/obs"
	"repro/internal/seq"
)

// Config tunes a Server. The zero value serves with the defaults
// noted on each field.
type Config struct {
	// MaxInFlight bounds concurrently mapping requests (default 4).
	MaxInFlight int
	// MaxQueue bounds requests waiting for an in-flight slot; beyond
	// it requests are rejected with 429 (default 4×MaxInFlight).
	MaxQueue int
	// WorkersPerRequest is the mapping-worker count each request's
	// stream pipeline gets (default GOMAXPROCS/MaxInFlight, min 1, so
	// a fully loaded server does not oversubscribe the cores).
	WorkersPerRequest int
	// DefaultTimeout is the per-request deadline when the client sends
	// no ?timeout (default 0 = none).
	DefaultTimeout time.Duration
	// MaxTimeout caps client-requested ?timeout values (default 5m).
	MaxTimeout time.Duration
	// MaxBodyBytes caps the request body (default 1 GiB).
	MaxBodyBytes int64
	// CommitBytes is the response-buffer threshold below which a
	// mapping response is sent atomically — errors before it produce a
	// partial-free error status; responses that outgrow it stream with
	// 200 and periodic flushes (default 1 MiB).
	CommitBytes int
	// Registry receives the server's instruments and is mounted at
	// /metrics; the mappers' own instruments should live in the same
	// registry (default: a fresh registry).
	Registry *obs.Registry

	// TraceRing bounds the completed request traces retained at
	// /debug/traces (default 256).
	TraceRing int
	// TraceSampleN keeps 1 in N of the ok-and-fast traces; errors, slow
	// requests and the p99 latency tail are always kept (default 1 =
	// keep everything the ring has room for).
	TraceSampleN int
	// SlowRequest is the latency threshold marking a request slow: slow
	// requests are always retained in the trace ring, always emitted to
	// the request log, and trigger the flight recorder (default 0 =
	// no threshold, flight recorder off).
	SlowRequest time.Duration
	// FlightRing bounds the flight snapshots retained at /debug/flight
	// (default 16).
	FlightRing int
	// Logger receives the sampled structured request log, one line per
	// selected request (default nil: no log emission; the
	// /debug/requests ring still fills).
	Logger *slog.Logger
	// LogSampleN emits 1 in N ok request-log lines through Logger;
	// errors and slow requests are always emitted (default 1).
	LogSampleN int
	// RequestLogRing bounds the request-log entries retained at
	// /debug/requests (default 256).
	RequestLogRing int
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 4
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 4 * c.MaxInFlight
	}
	if c.WorkersPerRequest <= 0 {
		c.WorkersPerRequest = runtime.GOMAXPROCS(0) / c.MaxInFlight
		if c.WorkersPerRequest < 1 {
			c.WorkersPerRequest = 1
		}
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 5 * time.Minute
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 30
	}
	if c.CommitBytes <= 0 {
		c.CommitBytes = 1 << 20
	}
	if c.Registry == nil {
		c.Registry = obs.NewRegistry()
	}
	if c.TraceRing <= 0 {
		c.TraceRing = 256
	}
	if c.TraceSampleN <= 0 {
		c.TraceSampleN = 1
	}
	if c.FlightRing <= 0 {
		c.FlightRing = 16
	}
	if c.LogSampleN <= 0 {
		c.LogSampleN = 1
	}
	if c.RequestLogRing <= 0 {
		c.RequestLogRing = 256
	}
	return c
}

// serveMetrics are the server-level instruments, alongside the mapper
// instruments already in the shared registry.
type serveMetrics struct {
	requests *obs.Counter
	rejected *obs.Counter
	errors   *obs.Counter
	deadline *obs.Counter
	canceled *obs.Counter
	badInput *obs.Counter
	swaps    *obs.Counter
	latency  *obs.Histogram
}

// Server is the mapping service. Create it with New, register indexes
// with AddIndex, and mount Handler on an http.Server.
type Server struct {
	cfg     Config
	reg     *obs.Registry
	adm     *admission
	indexes *indexSet
	met     serveMetrics
	mux     *http.ServeMux

	// Request-scoped observability: the tail-sampling trace ring
	// (/debug/traces), the slow-request flight recorder (/debug/flight),
	// the structured request log (/debug/requests), and the live
	// in-flight table snapshotted into flight captures.
	traces      *obs.TraceRing
	flight      *obs.FlightRecorder
	reqlog      *obs.RequestLog
	inflightMu  sync.Mutex
	inflightTab map[obs.TraceID]inflightEntry

	draining chan struct{} // closed by BeginDrain
}

// New creates a Server with no indexes loaded (readyz reports 503
// until the first AddIndex).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	reg := cfg.Registry
	s := &Server{
		cfg:     cfg,
		reg:     reg,
		adm:     newAdmission(cfg.MaxInFlight, cfg.MaxQueue),
		indexes: newIndexSet(),
		met: serveMetrics{
			requests: reg.Counter("jem_serve_requests_total", "mapping requests admitted"),
			rejected: reg.Counter("jem_serve_rejected_total", "mapping requests rejected by admission control (429)"),
			errors:   reg.Counter("jem_serve_errors_total", "mapping requests failed with a 5xx"),
			deadline: reg.Counter("jem_serve_deadline_total", "mapping requests that exceeded their deadline (504)"),
			canceled: reg.Counter("jem_serve_canceled_total", "mapping requests abandoned by the client"),
			badInput: reg.Counter("jem_serve_bad_input_total", "mapping requests rejected for malformed records (400)"),
			swaps:    reg.Counter("jem_serve_index_swaps_total", "index hot-swaps completed"),
			latency:  reg.Histogram("jem_serve_request_seconds", "mapping request latency", obs.LatencyBuckets()),
		},
		traces:      obs.NewTraceRing(cfg.TraceRing, cfg.TraceSampleN, cfg.SlowRequest),
		flight:      obs.NewFlightRecorder(cfg.SlowRequest, cfg.FlightRing, flightMinGap),
		reqlog:      obs.NewRequestLog(cfg.Logger, cfg.LogSampleN, cfg.RequestLogRing, cfg.SlowRequest),
		inflightTab: make(map[obs.TraceID]inflightEntry),
		draining:    make(chan struct{}),
	}
	reg.GaugeFunc("jem_serve_inflight", "mapping requests currently running",
		func() float64 { return float64(s.adm.InFlight()) })
	reg.GaugeFunc("jem_serve_queued", "mapping requests waiting for an in-flight slot",
		func() float64 { return float64(s.adm.Queued()) })
	reg.GaugeFunc("jem_serve_index_bytes", "total index bytes (resident + mapped) across all loaded index generations",
		func() float64 {
			var n int64
			for _, ix := range s.indexes.list() {
				n += ix.cur.Load().mapper.IndexBytes()
			}
			return float64(n)
		})
	reg.GaugeFunc("jem_serve_index_resident_bytes", "process-private heap bytes across all loaded index generations",
		func() float64 {
			var n int64
			for _, ix := range s.indexes.list() {
				resident, _ := ix.cur.Load().mapper.IndexMemory()
				n += resident
			}
			return float64(n)
		})
	reg.GaugeFunc("jem_serve_index_mapped_bytes", "file-backed (mmap, shareable) bytes across all loaded index generations",
		func() float64 {
			var n int64
			for _, ix := range s.indexes.list() {
				_, mapped := ix.cur.Load().mapper.IndexMemory()
				n += mapped
			}
			return float64(n)
		})
	reg.GaugeFunc("jem_serve_traces_retained", "request traces currently retained in the trace ring",
		func() float64 { return float64(s.traces.Len()) })
	reg.GaugeFunc("jem_serve_flight_captures", "flight-recorder snapshots taken since start",
		func() float64 { return float64(s.flight.Captures()) })

	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/map", s.handleMap)
	mux.HandleFunc("POST /v1/map/{index}", s.handleMap)
	mux.HandleFunc("GET /v1/indexes", s.handleIndexes)
	mux.HandleFunc("POST /v1/indexes/{name}/swap", s.handleSwap)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", s.handleReady)
	mux.HandleFunc("GET /debug/traces", s.handleTraces)
	mux.HandleFunc("GET /debug/flight", s.handleFlight)
	mux.HandleFunc("GET /debug/requests", s.handleRequests)
	obs.Mount(mux, reg)
	s.mux = mux
	return s
}

// Handler returns the server's HTTP surface (API + observability).
func (s *Server) Handler() http.Handler { return s.mux }

// Registry returns the server's observability registry.
func (s *Server) Registry() *obs.Registry { return s.reg }

// AddIndex registers (or replaces) a named reference index. Replacing
// follows the same swap-then-drain path as the HTTP endpoint.
func (s *Server) AddIndex(name string, m *jem.Mapper) {
	s.indexes.add(name, m)
}

// BeginDrain flips readyz to 503 so load balancers stop routing here;
// in-flight and queued requests keep running. Call it on
// SIGINT/SIGTERM before http.Server.Shutdown. Safe to call once.
func (s *Server) BeginDrain() { close(s.draining) }

func (s *Server) isDraining() bool {
	select {
	case <-s.draining:
		return true
	default:
		return false
	}
}

func (s *Server) handleReady(w http.ResponseWriter, _ *http.Request) {
	switch {
	case s.isDraining():
		http.Error(w, "draining", http.StatusServiceUnavailable)
	case s.indexes.size() == 0:
		http.Error(w, "no index loaded", http.StatusServiceUnavailable)
	default:
		fmt.Fprintln(w, "ready")
	}
}

// targetIndex resolves the index a map request addresses: the
// {index} path element when present, otherwise the sole loaded index.
func (s *Server) targetIndex(r *http.Request) (*servedIndex, error) {
	if name := r.PathValue("index"); name != "" {
		ix, ok := s.indexes.get(name)
		if !ok {
			return nil, fmt.Errorf("unknown index %q", name)
		}
		return ix, nil
	}
	if ix, ok := s.indexes.sole(); ok {
		return ix, nil
	}
	return nil, fmt.Errorf("%d indexes loaded; address one as /v1/map/{index}", s.indexes.size())
}

// requestDeadline derives the request context from ?timeout, the
// config default, and the MaxTimeout cap.
func (s *Server) requestDeadline(r *http.Request) (context.Context, context.CancelFunc, error) {
	d := s.cfg.DefaultTimeout
	if q := r.URL.Query().Get("timeout"); q != "" {
		td, err := time.ParseDuration(q)
		if err != nil || td <= 0 {
			return nil, nil, fmt.Errorf("bad timeout %q (want a positive Go duration, e.g. 30s)", q)
		}
		d = td
	}
	if d <= 0 {
		ctx, cancel := context.WithCancel(r.Context())
		return ctx, cancel, nil
	}
	if d > s.cfg.MaxTimeout {
		d = s.cfg.MaxTimeout
	}
	ctx, cancel := context.WithTimeout(r.Context(), d)
	return ctx, cancel, nil
}

// handleMap is the mapping endpoint: FASTA/FASTQ body in (optionally
// Content-Encoding: gzip), TSV (default) or NDJSON (?format=json)
// rows out, streamed. Stats land in the X-JEM-* response headers when
// the response is small enough to commit atomically. Every response —
// success or any rejection — carries an X-JEM-Trace-Id header; the
// deferred reqObs.finish routes the request into the trace ring, the
// request log and (when slow) the flight recorder.
func (s *Server) handleMap(w http.ResponseWriter, r *http.Request) {
	ro := s.beginRequest(w, r)
	defer ro.finish()

	ix, err := s.targetIndex(r)
	if err != nil {
		ro.httpError(w, err.Error(), http.StatusNotFound)
		return
	}
	ro.setIndex(ix.name)
	q := r.URL.Query()
	format := q.Get("format")
	if format == "" {
		format = "tsv"
	}
	if format != "tsv" && format != "json" {
		ro.httpError(w, fmt.Sprintf("bad format %q (want tsv or json)", format), http.StatusBadRequest)
		return
	}
	policy := jem.BadRecordFail
	if p := q.Get("on_bad_record"); p != "" {
		policy, err = jem.ParseBadRecordPolicy(p)
		if err != nil || policy == jem.BadRecordQuarantine {
			ro.httpError(w, "bad on_bad_record (want fail or skip)", http.StatusBadRequest)
			return
		}
	}
	ctx, cancel, err := s.requestDeadline(r)
	if err != nil {
		ro.httpError(w, err.Error(), http.StatusBadRequest)
		return
	}
	defer cancel()

	// Admission: bounded concurrency, bounded queue, 429 on overflow.
	// The wait is a child span, so queueing time is separated from
	// mapping time in the trace.
	admit := ro.root.Child("admission")
	release, err := s.adm.admit(ctx)
	ro.admWait = admit.End()
	if err != nil {
		if errors.Is(err, ErrQueueFull) {
			s.met.rejected.Inc()
			w.Header().Set("Retry-After", "1")
			ro.httpError(w, "server at capacity", http.StatusTooManyRequests)
			return
		}
		// Queued past the deadline (or the client gave up waiting).
		ro.timed = true
		status, msg := s.classify(err)
		ro.httpError(w, msg, status)
		return
	}
	defer release()
	s.met.requests.Inc()

	var reader io.Reader = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if r.Header.Get("Content-Encoding") == "gzip" {
		gz, err := gzip.NewReader(reader)
		if err != nil {
			ro.httpError(w, "bad gzip body: "+err.Error(), http.StatusBadRequest)
			return
		}
		defer gz.Close()
		reader = gz
	}

	v := ix.acquire()
	defer v.release()
	ro.root.SetAttr("generation", v.gen)

	dw := newDeferredWriter(w, s.cfg.CommitBytes)
	var sink io.Writer = dw
	if format == "json" {
		w.Header().Set("Content-Type", "application/x-ndjson")
		sink = &ndjsonWriter{w: dw}
	} else {
		w.Header().Set("Content-Type", "text/tab-separated-values; charset=utf-8")
	}

	// The context now carries the request span: the facade's Stream
	// attaches its read/sketch/gather/write phase children and
	// per-shard timings to it.
	ro.timed = true
	stats, err := v.mapper.Stream(obs.ContextWithSpan(ctx, ro.root), reader, sink, jem.StreamOptions{
		Workers:     s.cfg.WorkersPerRequest,
		OnBadRecord: policy,
	})
	ro.stats = stats
	if err != nil {
		status, msg := s.classify(err)
		ro.fail(status, msg)
		dw.fail(status, msg)
		return
	}
	err = dw.finish(func(h http.Header) {
		h.Set("X-JEM-Reads", fmt.Sprint(stats.Reads))
		h.Set("X-JEM-Segments", fmt.Sprint(stats.Segments))
		h.Set("X-JEM-Mapped", fmt.Sprint(stats.Mapped))
		h.Set("X-JEM-Bad-Records", fmt.Sprint(stats.BadRecords))
		h.Set("X-JEM-Postings-Scanned", fmt.Sprint(stats.PostingsScanned))
		h.Set("X-JEM-Index-Generation", fmt.Sprint(v.gen))
		// The heap cost of the index that served this request, after any
		// lazy fault-ins the request itself triggered (a budgeted mmap
		// open grows this; a heap index reports its full size).
		resident, _ := v.mapper.IndexMemory()
		h.Set("X-JEM-Index-Resident-Bytes", fmt.Sprint(resident))
		if len(stats.ShardsLost) > 0 {
			// Degraded answer: the rows are complete but segments whose
			// probes routed to these shards were mapped without their
			// postings. Clients that need exactness retry the request.
			h.Set("X-JEM-Shards-Lost", joinInts(stats.ShardsLost))
		}
	})
	if err != nil {
		// The response write failed; nothing sensible to send.
		s.met.canceled.Inc()
		ro.fail(499, "response write failed: "+err.Error())
	}
}

// joinInts renders ids as a comma-separated list for the
// X-JEM-Shards-Lost header.
func joinInts(ids []int) string {
	var b []byte
	for i, id := range ids {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendInt(b, int64(id), 10)
	}
	return string(b)
}

// classify maps run errors to HTTP statuses and moves the failure
// counters: deadline → 504, client-gone → 499 (nginx convention),
// malformed records → 400, everything else (injected faults, worker
// panics, I/O) → 500.
func (s *Server) classify(err error) (int, string) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		s.met.deadline.Inc()
		return http.StatusGatewayTimeout, "deadline exceeded before the mapping completed"
	case errors.Is(err, context.Canceled):
		s.met.canceled.Inc()
		return 499, "request canceled"
	case seq.IsRecordError(err):
		s.met.badInput.Inc()
		return http.StatusBadRequest, "malformed input record: " + err.Error()
	default:
		s.met.errors.Inc()
		return http.StatusInternalServerError, "mapping failed: " + err.Error()
	}
}

// swapRequest is the POST /v1/indexes/{name}/swap body.
type swapRequest struct {
	// IndexPath is the saved index (JEMIDX05 etc.) to load.
	IndexPath string `json:"index_path"`
	// ContigsPath, when set, supplies contig records: the rebuild
	// source with RebuildOnCorrupt, otherwise record metadata only.
	ContigsPath string `json:"contigs_path,omitempty"`
	// RebuildOnCorrupt falls back to rebuilding from ContigsPath when
	// the index file fails its checksum.
	RebuildOnCorrupt bool `json:"rebuild_on_corrupt,omitempty"`
	// Shards applies to a rebuild (a loaded index keeps its own).
	Shards int `json:"shards,omitempty"`
	// Memory selects how the loaded index is held: "heap" (default),
	// "mmap" (serve straight from the page cache), or "auto" with
	// MemoryBudget heap bytes (hot shards resident, the rest mapped).
	// Applies to index_path loads; a rebuild is always heap-resident.
	Memory string `json:"memory,omitempty"`
	// MemoryBudget is the heap byte budget for Memory "auto".
	MemoryBudget int64 `json:"memory_budget,omitempty"`
	// DrainTimeout bounds the wait for old-generation requests
	// (Go duration string, default "30s").
	DrainTimeout string `json:"drain_timeout,omitempty"`
	// Create registers the name if it is not already served.
	Create bool `json:"create,omitempty"`
}

type swapResponse struct {
	Name          string `json:"name"`
	Generation    int64  `json:"generation"`
	IndexBytes    int64  `json:"index_bytes"`
	ResidentBytes int64  `json:"resident_bytes"`
	MappedBytes   int64  `json:"mapped_bytes"`
	Contigs       int    `json:"contigs"`
	Shards        int    `json:"shards"`
	Rebuilt       bool   `json:"rebuilt,omitempty"`
	Drained       bool   `json:"drained"`
	DrainMs       int64  `json:"drain_ms"`
	// Released reports that the displaced generation's backend
	// resources (an mmap'd index's file mapping) were closed after the
	// drain; false when the drain timed out — the old generation still
	// has requests pinned, so its mapping must stay alive.
	Released bool `json:"released"`
}

// handleSwap loads a new index generation and hot-swaps it behind the
// name's atomic pointer. In-flight requests finish on the generation
// they started with; the handler waits (bounded) for that drain and
// reports whether it completed. No request is ever dropped by a swap.
func (s *Server) handleSwap(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var req swapRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		http.Error(w, "bad swap request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if req.IndexPath == "" && req.ContigsPath == "" {
		http.Error(w, "swap needs index_path, contigs_path, or both", http.StatusBadRequest)
		return
	}
	if _, known := s.indexes.get(name); !known && !req.Create {
		http.Error(w, fmt.Sprintf("unknown index %q (set create to register it)", name), http.StatusNotFound)
		return
	}
	drainTimeout := 30 * time.Second
	if req.DrainTimeout != "" {
		d, err := time.ParseDuration(req.DrainTimeout)
		if err != nil || d <= 0 {
			http.Error(w, "bad drain_timeout", http.StatusBadRequest)
			return
		}
		drainTimeout = d
	}

	var contigs []jem.Record
	if req.ContigsPath != "" {
		var err error
		if contigs, err = jem.ReadSequences(req.ContigsPath); err != nil {
			http.Error(w, "loading contigs: "+err.Error(), http.StatusBadRequest)
			return
		}
	}
	opts := jem.DefaultOptions()
	opts.Metrics = s.reg
	opts.Shards = req.Shards
	mode, err := jem.ParseMemoryMode(req.Memory)
	if err != nil {
		http.Error(w, "bad memory: "+err.Error(), http.StatusBadRequest)
		return
	}
	opts.Memory = jem.Memory{Mode: mode, Budget: req.MemoryBudget}
	m, info, err := jem.Open(jem.OpenOptions{
		Contigs:          contigs,
		IndexPath:        req.IndexPath,
		RebuildOnCorrupt: req.RebuildOnCorrupt,
		Options:          opts,
	})
	if err != nil {
		http.Error(w, "loading index: "+err.Error(), http.StatusBadRequest)
		return
	}

	ix, displaced := s.indexes.add(name, m)
	resident, mapped := m.IndexMemory()
	resp := swapResponse{
		Name:          name,
		Generation:    ix.cur.Load().gen,
		IndexBytes:    m.IndexBytes(),
		ResidentBytes: resident,
		MappedBytes:   mapped,
		Contigs:       m.NumContigs(),
		Shards:        m.Shards(),
		Rebuilt:       info.Rebuilt,
		Drained:       true,
		Released:      true,
	}
	if displaced != nil {
		dctx, cancel := context.WithTimeout(r.Context(), drainTimeout)
		defer cancel()
		var waited time.Duration
		resp.Drained, waited = drain(dctx, displaced)
		resp.DrainMs = waited.Milliseconds()
		// Only a fully drained generation can be closed: Close unmaps an
		// mmap-backed index (and tears down shard-server pools), which
		// must never happen under a request still pinning the mapper. A
		// timed-out drain leaves the old generation alive; its memory
		// stays accounted until its requests finish and GC collects it.
		resp.Released = resp.Drained
		if resp.Drained {
			_ = displaced.mapper.Close()
		}
	}
	s.met.swaps.Inc()
	writeJSON(w, http.StatusOK, resp)
}

// indexInfo is one entry of the GET /v1/indexes listing. IndexBytes is
// the whole index; ResidentBytes/MappedBytes split it into
// process-private heap and file-backed mapping (a budgeted open's
// lazy fault-ins move bytes from mapped to resident, so the split is
// live, not a load-time snapshot).
type indexInfo struct {
	Name          string `json:"name"`
	Generation    int64  `json:"generation"`
	Contigs       int    `json:"contigs"`
	Shards        int    `json:"shards"`
	IndexBytes    int64  `json:"index_bytes"`
	ResidentBytes int64  `json:"resident_bytes"`
	MappedBytes   int64  `json:"mapped_bytes"`
	InFlight      int64  `json:"inflight"`
	Served        int64  `json:"served"`
	Params        struct {
		K          int   `json:"k"`
		W          int   `json:"w"`
		Trials     int   `json:"trials"`
		SegmentLen int   `json:"segment_len"`
		Seed       int64 `json:"seed"`
	} `json:"params"`
}

func (s *Server) handleIndexes(w http.ResponseWriter, _ *http.Request) {
	list := s.indexes.list()
	out := struct {
		Indexes       []indexInfo `json:"indexes"`
		TotalBytes    int64       `json:"total_index_bytes"`
		TotalResident int64       `json:"total_resident_bytes"`
		TotalMapped   int64       `json:"total_mapped_bytes"`
	}{Indexes: make([]indexInfo, 0, len(list))}
	for _, ix := range list {
		v := ix.cur.Load()
		m := v.mapper
		resident, mapped := m.IndexMemory()
		info := indexInfo{
			Name:          ix.name,
			Generation:    v.gen,
			Contigs:       m.NumContigs(),
			Shards:        m.Shards(),
			IndexBytes:    m.IndexBytes(),
			ResidentBytes: resident,
			MappedBytes:   mapped,
			InFlight:      v.inflight.Load(),
			Served:        v.served.Load(),
		}
		o := m.Options()
		info.Params.K, info.Params.W = o.K, o.W
		info.Params.Trials, info.Params.SegmentLen = o.Trials, o.SegmentLen
		info.Params.Seed = o.Seed
		out.TotalBytes += info.IndexBytes
		out.TotalResident += resident
		out.TotalMapped += mapped
		out.Indexes = append(out.Indexes, info)
	}
	writeJSON(w, http.StatusOK, out)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
