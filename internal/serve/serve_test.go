package serve_test

import (
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/serve"
)

// testWorld builds the shared fixture once per test binary: a small
// synthesized dataset, a mapper over its contigs, the FASTQ bytes of
// its reads, and the TSV the CLI path produces for them — the
// byte-identity reference every server response is held against.
type testWorld struct {
	ds        *jem.Dataset
	opts      jem.Options
	fastq     []byte
	expectTSV []byte
}

var (
	worldOnce sync.Once
	world     *testWorld
	worldErr  error
)

func getWorld(t *testing.T) *testWorld {
	t.Helper()
	worldOnce.Do(func() {
		ds, err := jem.Synthesize(jem.SynthesisConfig{
			Name:           "servetest",
			GenomeLength:   200_000,
			RepeatFraction: 0.05,
			HiFiCoverage:   3,
			HiFiMedianLen:  8000,
			ShortCoverage:  25,
			Seed:           7,
		})
		if err != nil {
			worldErr = err
			return
		}
		var fastq bytes.Buffer
		for _, r := range ds.Reads {
			fmt.Fprintf(&fastq, "@%s\n%s\n+\n%s\n", r.ID, r.Seq, strings.Repeat("I", len(r.Seq)))
		}
		opts := jem.DefaultOptions()
		opts.Shards = 4
		mapper, err := jem.NewMapper(ds.Contigs, opts)
		if err != nil {
			worldErr = err
			return
		}
		var expect bytes.Buffer
		if _, err := mapper.Stream(context.Background(), bytes.NewReader(fastq.Bytes()), &expect, jem.StreamOptions{}); err != nil {
			worldErr = err
			return
		}
		world = &testWorld{ds: ds, opts: opts, fastq: fastq.Bytes(), expectTSV: expect.Bytes()}
	})
	if worldErr != nil {
		t.Fatalf("building test world: %v", worldErr)
	}
	return world
}

// newTestServer builds a serve.Server with one index named "asm" over
// the shared dataset and returns it with its httptest frontend.
func newTestServer(t *testing.T, cfg serve.Config) (*serve.Server, *httptest.Server) {
	t.Helper()
	w := getWorld(t)
	if cfg.Registry == nil {
		cfg.Registry = obs.NewRegistry()
	}
	opts := w.opts
	opts.Metrics = cfg.Registry
	mapper, err := jem.NewMapper(w.ds.Contigs, opts)
	if err != nil {
		t.Fatal(err)
	}
	s := serve.New(cfg)
	s.AddIndex("asm", mapper)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postReads(t *testing.T, url string, body []byte) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	return resp
}

func readBody(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading body: %v", err)
	}
	return b
}

// TestServeConcurrentByteIdentical is the core serving contract:
// concurrent mapping requests all succeed and every response is
// byte-identical to what the jem-mapper CLI streaming path writes for
// the same input.
func TestServeConcurrentByteIdentical(t *testing.T) {
	w := getWorld(t)
	_, ts := newTestServer(t, serve.Config{MaxInFlight: 4, MaxQueue: 64})

	const clients = 12
	var wg sync.WaitGroup
	bodies := make([][]byte, clients)
	statuses := make([]int, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/map/asm", "application/octet-stream", bytes.NewReader(w.fastq))
			if err != nil {
				t.Errorf("client %d: %v", i, err)
				return
			}
			statuses[i] = resp.StatusCode
			bodies[i], _ = io.ReadAll(resp.Body)
			_ = resp.Body.Close()
		}(i)
	}
	wg.Wait()
	for i := 0; i < clients; i++ {
		if statuses[i] != http.StatusOK {
			t.Fatalf("client %d: status %d, body: %.200s", i, statuses[i], bodies[i])
		}
		if !bytes.Equal(bodies[i], w.expectTSV) {
			t.Errorf("client %d: response differs from CLI TSV (%d vs %d bytes)", i, len(bodies[i]), len(w.expectTSV))
		}
	}
}

// TestServeStatsHeadersAndJSON covers the NDJSON transcoding and the
// per-run stats headers on atomic responses.
func TestServeStatsHeadersAndJSON(t *testing.T) {
	w := getWorld(t)
	_, ts := newTestServer(t, serve.Config{})

	resp := postReads(t, ts.URL+"/v1/map?format=json", w.fastq)
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %.200s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("Content-Type"); got != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", got)
	}
	if reads := resp.Header.Get("X-JEM-Reads"); reads != fmt.Sprint(len(w.ds.Reads)) {
		t.Errorf("X-JEM-Reads = %q, want %d", reads, len(w.ds.Reads))
	}
	lines := bytes.Split(bytes.TrimSpace(body), []byte{'\n'})
	wantRows := len(bytes.Split(bytes.TrimSpace(w.expectTSV), []byte{'\n'})) - 1 // minus TSV header
	if len(lines) != wantRows {
		t.Fatalf("NDJSON rows = %d, want %d", len(lines), wantRows)
	}
	for _, ln := range lines {
		var row struct {
			ReadID string `json:"read_id"`
			End    string `json:"end"`
			Mapped bool   `json:"mapped"`
		}
		if err := json.Unmarshal(ln, &row); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", ln, err)
		}
		if row.ReadID == "" || (row.End != "prefix" && row.End != "suffix") {
			t.Fatalf("implausible row %q", ln)
		}
	}
}

// TestServeDeadline pins the partial-free deadline contract: a request
// whose deadline fires before the response commits returns 504 with no
// mapping rows, and the deadline counter moves.
func TestServeDeadline(t *testing.T) {
	w := getWorld(t)
	reg := obs.NewRegistry()
	_, ts := newTestServer(t, serve.Config{Registry: reg})

	resp := postReads(t, ts.URL+"/v1/map/asm?timeout=1ns", w.fastq)
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504; body: %.200s", resp.StatusCode, body)
	}
	if bytes.Contains(body, []byte("read_id\t")) || bytes.Contains(body, []byte("\tprefix\t")) {
		t.Errorf("504 body contains partial mapping rows: %.200s", body)
	}
	if got := reg.Snapshot()["jem_serve_deadline_total"]; got != 1 {
		t.Errorf("jem_serve_deadline_total = %v, want 1", got)
	}
}

// TestServeAdmissionControl pins the 429 overflow contract with a
// one-slot, zero-queue server: while one request holds the slot, the
// next is rejected immediately with Retry-After.
func TestServeAdmissionControl(t *testing.T) {
	w := getWorld(t)
	reg := obs.NewRegistry()
	_, ts := newTestServer(t, serve.Config{MaxInFlight: 1, MaxQueue: 1, Registry: reg})

	// Hold the only slot with a request whose body we dribble in.
	pr, pw := io.Pipe()
	headerDone := make(chan *http.Response, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/map/asm", "application/octet-stream", pr)
		if err == nil {
			headerDone <- resp
		} else {
			t.Error(err)
			headerDone <- nil
		}
	}()
	// First record unblocks admission inside the handler; the stream
	// then waits for more body, keeping the slot held.
	first := bytes.Index(w.fastq[1:], []byte("\n@")) + 1
	if _, err := pw.Write(w.fastq[:first]); err != nil {
		t.Fatal(err)
	}

	// The slot is taken (single in-flight). The queue absorbs one
	// waiter; rejection needs the queue full too, so fire two
	// concurrent probes — at least one must see 429.
	deadline := time.Now().Add(5 * time.Second)
	got429 := false
	for !got429 && time.Now().Before(deadline) {
		var wg sync.WaitGroup
		codes := make([]int, 2)
		for i := range codes {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				resp, err := http.Post(ts.URL+"/v1/map/asm?timeout=100ms", "application/octet-stream", bytes.NewReader(w.fastq))
				if err != nil {
					return
				}
				io.Copy(io.Discard, resp.Body)
				_ = resp.Body.Close()
				codes[i] = resp.StatusCode
			}(i)
		}
		wg.Wait()
		for _, c := range codes {
			if c == http.StatusTooManyRequests {
				got429 = true
			}
		}
	}
	if !got429 {
		t.Error("never observed a 429 with MaxInFlight=1, MaxQueue=1")
	}
	if got := reg.Snapshot()["jem_serve_rejected_total"]; got < 1 {
		t.Errorf("jem_serve_rejected_total = %v, want ≥ 1", got)
	}

	// Release the held slot; the pinned request must still complete.
	if _, err := pw.Write(w.fastq[first:]); err != nil {
		t.Fatal(err)
	}
	_ = pw.Close()
	resp := <-headerDone
	if resp == nil {
		t.Fatal("held request failed")
	}
	b := readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("held request: status %d: %.200s", resp.StatusCode, b)
	}
	if !bytes.Equal(b, w.expectTSV) {
		t.Error("held request output differs from CLI TSV")
	}
}

// TestServeHotSwapUnderLoad drives continuous mapping traffic while
// the index is hot-swapped from a saved index file. Zero requests may
// fail, every response stays byte-identical (the swapped index is
// built from the same contigs), and the generation must advance.
func TestServeHotSwapUnderLoad(t *testing.T) {
	w := getWorld(t)
	reg := obs.NewRegistry()
	srv, ts := newTestServer(t, serve.Config{MaxInFlight: 4, MaxQueue: 64, Registry: reg})
	_ = srv

	// Save an identical index to swap in.
	opts := w.opts
	mapper, err := jem.NewMapper(w.ds.Contigs, opts)
	if err != nil {
		t.Fatal(err)
	}
	idxPath := filepath.Join(t.TempDir(), "asm.jemidx")
	if err := mapper.SaveIndexFile(idxPath); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var mu sync.Mutex
	var failures []string
	requests := 0
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Post(ts.URL+"/v1/map/asm", "application/octet-stream", bytes.NewReader(w.fastq))
				if err != nil {
					mu.Lock()
					failures = append(failures, err.Error())
					mu.Unlock()
					continue
				}
				body, _ := io.ReadAll(resp.Body)
				_ = resp.Body.Close()
				mu.Lock()
				requests++
				if resp.StatusCode != http.StatusOK {
					failures = append(failures, fmt.Sprintf("status %d: %.100s", resp.StatusCode, body))
				} else if !bytes.Equal(body, w.expectTSV) {
					failures = append(failures, "response bytes differ")
				}
				mu.Unlock()
			}
		}()
	}

	// Let traffic build, then swap twice mid-flight.
	time.Sleep(200 * time.Millisecond)
	for swapN := 0; swapN < 2; swapN++ {
		reqBody, _ := json.Marshal(map[string]any{"index_path": idxPath, "drain_timeout": "10s"})
		resp, err := http.Post(ts.URL+"/v1/indexes/asm/swap", "application/json", bytes.NewReader(reqBody))
		if err != nil {
			t.Fatalf("swap %d: %v", swapN, err)
		}
		var sr struct {
			Generation int64 `json:"generation"`
			Drained    bool  `json:"drained"`
		}
		body := readBody(t, resp)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("swap %d: status %d: %s", swapN, resp.StatusCode, body)
		}
		if err := json.Unmarshal(body, &sr); err != nil {
			t.Fatalf("swap %d: bad response %s: %v", swapN, body, err)
		}
		if want := int64(swapN + 2); sr.Generation != want {
			t.Errorf("swap %d: generation = %d, want %d", swapN, sr.Generation, want)
		}
		if !sr.Drained {
			t.Errorf("swap %d: old generation did not drain", swapN)
		}
		time.Sleep(100 * time.Millisecond)
	}
	close(stop)
	wg.Wait()

	if len(failures) > 0 {
		t.Fatalf("%d/%d requests failed across hot-swaps; first: %s", len(failures), requests, failures[0])
	}
	if requests == 0 {
		t.Fatal("no requests completed during the swap window")
	}
	if got := reg.Snapshot()["jem_serve_index_swaps_total"]; got != 2 {
		t.Errorf("jem_serve_index_swaps_total = %v, want 2", got)
	}
}

// TestServeFaultInjection proves injected faults surface as 5xx with
// the relevant counters moving, and that the server keeps serving
// afterwards.
func TestServeFaultInjection(t *testing.T) {
	w := getWorld(t)
	reg := obs.NewRegistry()
	_, ts := newTestServer(t, serve.Config{Registry: reg})

	t.Run("worker.panic", func(t *testing.T) {
		fault.Set(fault.WorkerPanic, fault.Spec{})
		defer fault.Reset()
		resp := postReads(t, ts.URL+"/v1/map/asm", w.fastq)
		body := readBody(t, resp)
		if resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("status = %d, want 500; body: %.200s", resp.StatusCode, body)
		}
		if bytes.Contains(body, []byte("\tprefix\t")) {
			t.Error("500 body contains partial mapping rows")
		}
		snap := reg.Snapshot()
		if snap["jem_stream_worker_panics_total"] < 1 {
			t.Errorf("jem_stream_worker_panics_total = %v, want ≥ 1", snap["jem_stream_worker_panics_total"])
		}
		if snap["jem_serve_errors_total"] < 1 {
			t.Errorf("jem_serve_errors_total = %v, want ≥ 1", snap["jem_serve_errors_total"])
		}
	})

	t.Run("writer.enospc", func(t *testing.T) {
		fault.Set(fault.WriterENOSPC, fault.Spec{})
		defer fault.Reset()
		resp := postReads(t, ts.URL+"/v1/map/asm", w.fastq)
		body := readBody(t, resp)
		if resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("status = %d, want 500; body: %.200s", resp.StatusCode, body)
		}
		if !bytes.Contains(body, []byte("mapping failed")) {
			t.Errorf("500 body does not explain the failure: %.200s", body)
		}
	})

	t.Run("bad records quarantine-free skip", func(t *testing.T) {
		fault.Reset()
		// Splice a malformed record in front of valid FASTQ; with
		// on_bad_record=skip the run succeeds and the counter moves.
		input := append([]byte("@broken\nACGT\n+\nII\n"), w.fastq...)
		resp := postReads(t, ts.URL+"/v1/map/asm?on_bad_record=skip", input)
		body := readBody(t, resp)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d: %.200s", resp.StatusCode, body)
		}
		if got := resp.Header.Get("X-JEM-Bad-Records"); got != "1" {
			t.Errorf("X-JEM-Bad-Records = %q, want 1", got)
		}
		if got := reg.Snapshot()["jem_stream_bad_records_total"]; got < 1 {
			t.Errorf("jem_stream_bad_records_total = %v, want ≥ 1", got)
		}
	})

	// The server survived every injected failure.
	resp := postReads(t, ts.URL+"/v1/map/asm", w.fastq)
	if body := readBody(t, resp); resp.StatusCode != http.StatusOK || !bytes.Equal(body, w.expectTSV) {
		t.Fatalf("post-fault request: status %d, identical=%v", resp.StatusCode, bytes.Equal(body, w.expectTSV))
	}
}

// TestServeIndexesAndHealth covers the listing (memory accounting
// included), health and readiness endpoints, and /metrics mounting.
func TestServeIndexesAndHealth(t *testing.T) {
	w := getWorld(t)
	reg := obs.NewRegistry()
	srv, ts := newTestServer(t, serve.Config{Registry: reg})

	get := func(path string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return resp, readBody(t, resp)
	}

	resp, body := get("/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz: %d", resp.StatusCode)
	}
	resp, _ = get("/readyz")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("readyz: %d", resp.StatusCode)
	}

	resp, body = get("/v1/indexes")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("indexes: %d", resp.StatusCode)
	}
	var listing struct {
		Indexes []struct {
			Name       string `json:"name"`
			Contigs    int    `json:"contigs"`
			Shards     int    `json:"shards"`
			IndexBytes int64  `json:"index_bytes"`
			Generation int64  `json:"generation"`
			Params     struct {
				K int `json:"k"`
			} `json:"params"`
		} `json:"indexes"`
		TotalBytes int64 `json:"total_index_bytes"`
	}
	if err := json.Unmarshal(body, &listing); err != nil {
		t.Fatalf("bad listing %s: %v", body, err)
	}
	if len(listing.Indexes) != 1 {
		t.Fatalf("listing has %d indexes, want 1", len(listing.Indexes))
	}
	ix := listing.Indexes[0]
	if ix.Name != "asm" || ix.Contigs != len(w.ds.Contigs) || ix.Shards != 4 || ix.Params.K != 16 {
		t.Errorf("listing entry off: %+v", ix)
	}
	if ix.IndexBytes <= 0 || listing.TotalBytes != ix.IndexBytes {
		t.Errorf("memory accounting off: index=%d total=%d", ix.IndexBytes, listing.TotalBytes)
	}

	// A mapped request then shows up in /metrics, mounted on this mux.
	_ = postReads(t, ts.URL+"/v1/map/asm", w.fastq).Body.Close()
	_, metrics := get("/metrics")
	for _, want := range []string{"jem_serve_requests_total", "jem_serve_inflight", "jem_stream_reads_total", "jem_serve_index_bytes"} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("/metrics missing %s", want)
		}
	}

	// Draining flips readyz only.
	srv.BeginDrain()
	resp, _ = get("/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz while draining: %d, want 503", resp.StatusCode)
	}
	resp, _ = get("/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz while draining: %d, want 200", resp.StatusCode)
	}
	_ = body
}

// TestServeUnknownIndex pins the 404 path and the multi-index
// disambiguation error.
func TestServeUnknownIndex(t *testing.T) {
	w := getWorld(t)
	srv, ts := newTestServer(t, serve.Config{})

	resp := postReads(t, ts.URL+"/v1/map/nope", w.fastq)
	readBody(t, resp)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown index: %d, want 404", resp.StatusCode)
	}

	// With two indexes, the bare endpoint must demand a name.
	opts := w.opts
	m2, err := jem.NewMapper(w.ds.Contigs, opts)
	if err != nil {
		t.Fatal(err)
	}
	srv.AddIndex("second", m2)
	resp = postReads(t, ts.URL+"/v1/map", w.fastq)
	readBody(t, resp)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("ambiguous index: %d, want 404", resp.StatusCode)
	}
}

// TestServeGzipBody maps a gzip-compressed request body — every real
// read set ships compressed.
func TestServeGzipBody(t *testing.T) {
	w := getWorld(t)
	_, ts := newTestServer(t, serve.Config{})

	var gz bytes.Buffer
	zw := gzip.NewWriter(&gz)
	if _, err := zw.Write(w.fastq); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest("POST", ts.URL+"/v1/map/asm", &gz)
	req.Header.Set("Content-Encoding", "gzip")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %.200s", resp.StatusCode, body)
	}
	if !bytes.Equal(body, w.expectTSV) {
		t.Error("gzip request output differs from CLI TSV")
	}
}

// TestServeMemoryAccounting: the serving tier's out-of-core surface.
// Swapping in an mmap-held index reports the resident/mapped split in
// the swap response, /v1/indexes, /metrics and the per-response
// X-JEM-Index-Resident-Bytes header — and the swapped index still
// serves byte-identical output. The displaced heap generation drains
// and is released.
func TestServeMemoryAccounting(t *testing.T) {
	w := getWorld(t)
	reg := obs.NewRegistry()
	_, ts := newTestServer(t, serve.Config{Registry: reg})

	mapper, err := jem.NewMapper(w.ds.Contigs, w.opts)
	if err != nil {
		t.Fatal(err)
	}
	idxPath := filepath.Join(t.TempDir(), "asm.jemidx")
	if err := mapper.SaveIndexFile(idxPath); err != nil {
		t.Fatal(err)
	}

	reqBody, _ := json.Marshal(map[string]any{"index_path": idxPath, "memory": "mmap"})
	resp, err := http.Post(ts.URL+"/v1/indexes/asm/swap", "application/json", bytes.NewReader(reqBody))
	if err != nil {
		t.Fatal(err)
	}
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("swap: status %d: %s", resp.StatusCode, body)
	}
	var sr struct {
		IndexBytes    int64 `json:"index_bytes"`
		ResidentBytes int64 `json:"resident_bytes"`
		MappedBytes   int64 `json:"mapped_bytes"`
		Drained       bool  `json:"drained"`
		Released      bool  `json:"released"`
	}
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatalf("bad swap response %s: %v", body, err)
	}
	if sr.MappedBytes <= 0 {
		t.Errorf("mmap swap reports %d mapped bytes", sr.MappedBytes)
	}
	if !sr.Drained || !sr.Released {
		t.Errorf("displaced generation: drained=%v released=%v, want both", sr.Drained, sr.Released)
	}

	// The mapped index serves byte-identically and stamps its resident
	// cost on the response.
	mresp := postReads(t, ts.URL+"/v1/map/asm", w.fastq)
	mbody := readBody(t, mresp)
	if mresp.StatusCode != http.StatusOK {
		t.Fatalf("map after swap: %d: %.200s", mresp.StatusCode, mbody)
	}
	if !bytes.Equal(mbody, w.expectTSV) {
		t.Fatalf("mmap-served response differs from the heap reference (%d vs %d bytes)", len(mbody), len(w.expectTSV))
	}
	if h := mresp.Header.Get("X-JEM-Index-Resident-Bytes"); h == "" {
		t.Error("no X-JEM-Index-Resident-Bytes header")
	} else if n, err := strconv.ParseInt(h, 10, 64); err != nil || n < 0 {
		t.Errorf("X-JEM-Index-Resident-Bytes = %q", h)
	}

	// The listing splits resident vs mapped and totals both.
	lresp, err := http.Get(ts.URL + "/v1/indexes")
	if err != nil {
		t.Fatal(err)
	}
	lbody := readBody(t, lresp)
	var listing struct {
		Indexes []struct {
			IndexBytes    int64 `json:"index_bytes"`
			ResidentBytes int64 `json:"resident_bytes"`
			MappedBytes   int64 `json:"mapped_bytes"`
		} `json:"indexes"`
		TotalResident int64 `json:"total_resident_bytes"`
		TotalMapped   int64 `json:"total_mapped_bytes"`
	}
	if err := json.Unmarshal(lbody, &listing); err != nil {
		t.Fatalf("bad listing %s: %v", lbody, err)
	}
	if len(listing.Indexes) != 1 {
		t.Fatalf("listing has %d indexes", len(listing.Indexes))
	}
	ix := listing.Indexes[0]
	if ix.MappedBytes <= 0 || ix.MappedBytes != listing.TotalMapped || ix.ResidentBytes != listing.TotalResident {
		t.Errorf("listing split off: %+v totals=%d/%d", ix, listing.TotalResident, listing.TotalMapped)
	}

	// The split is exported as gauges alongside the total.
	gresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics := string(readBody(t, gresp))
	for _, want := range []string{"jem_serve_index_resident_bytes", "jem_serve_index_mapped_bytes"} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %s", want)
		}
	}

	// A bad memory mode is a 400, not a load attempt.
	reqBody, _ = json.Marshal(map[string]any{"index_path": idxPath, "memory": "balanced"})
	bresp, err := http.Post(ts.URL+"/v1/indexes/asm/swap", "application/json", bytes.NewReader(reqBody))
	if err != nil {
		t.Fatal(err)
	}
	bbody := readBody(t, bresp)
	if bresp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad memory mode: status %d: %.120s", bresp.StatusCode, bbody)
	}
}
