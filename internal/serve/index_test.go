package serve

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"
)

// TestDrainIdleVersion covers the fast path: a version with no pinned
// requests drains without arming the ticker at all.
func TestDrainIdleVersion(t *testing.T) {
	v := &version{gen: 1}
	drained, _ := drain(context.Background(), v)
	if !drained {
		t.Fatal("drain of an idle version must complete")
	}
}

// TestDrainWaitsForRelease is the regression test for the drain poll
// loop rewrite (time.After-per-iteration → one ticker): drain must
// still observe the in-flight count dropping to zero and report
// completion.
func TestDrainWaitsForRelease(t *testing.T) {
	v := &version{gen: 1}
	v.inflight.Add(1)
	go func() {
		time.Sleep(10 * time.Millisecond)
		v.inflight.Add(-1)
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	drained, waited := drain(ctx, v)
	if !drained {
		t.Fatal("drain must complete once the pinned request releases")
	}
	if waited <= 0 {
		t.Error("drain reported a non-positive wait for a real wait")
	}
}

// TestDrainContextExpiry: a version whose request never finishes must
// not wedge the swapper — drain gives up when the context does.
func TestDrainContextExpiry(t *testing.T) {
	v := &version{gen: 1}
	v.inflight.Add(1) // never released
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	drained, _ := drain(ctx, v)
	if drained {
		t.Fatal("drain must report failure when the context expires first")
	}
}

// TestBeginRequestContextOutlivesRequest is the regression test for
// the request-log context fix: finish runs after the handler returns,
// when the request context may already be canceled, so reqObs must
// carry that context stripped of cancellation but keeping its values
// (trace correlation lives there).
func TestBeginRequestContextOutlivesRequest(t *testing.T) {
	s := New(Config{})
	type key struct{}
	r := httptest.NewRequest("POST", "/map/asm", nil)
	reqCtx, cancel := context.WithCancel(context.WithValue(r.Context(), key{}, "corr-1"))
	r = r.WithContext(reqCtx)

	ro := s.beginRequest(httptest.NewRecorder(), r)
	cancel() // the handler returned; the request context died

	if err := ro.ctx.Err(); err != nil {
		t.Fatalf("reqObs ctx canceled with the request: %v", err)
	}
	if v, _ := ro.ctx.Value(key{}).(string); v != "corr-1" {
		t.Errorf("reqObs ctx lost request values: got %q, want \"corr-1\"", v)
	}
}
