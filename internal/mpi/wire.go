package mpi

import (
	"fmt"
	"io"
	"net"
	"sort"
	"time"
)

// WireMeasurement is an empirically measured α–β point: the
// per-message latency and reciprocal bandwidth of a real socket, in
// the same units CostModel uses. It grounds the simulator's charged
// communication costs against what the bytes actually cost on this
// machine (see EXPERIMENTS.md "Wire model validation").
type WireMeasurement struct {
	// Latency is the median round-trip time of a small (64 B) message
	// — the α term. One ping-pong round trip is the unit the model's
	// τ·⌈log₂ p⌉ charges per allgather round, so RTT (not RTT/2) is
	// the comparable quantity.
	Latency time.Duration
	// SecPerByte is the measured reciprocal bandwidth — the μ term —
	// from streaming Bytes through the socket.
	SecPerByte float64
	// Bytes is the payload size the bandwidth was measured with.
	Bytes int64
}

// Model converts the measurement into a CostModel.
func (wm WireMeasurement) Model() CostModel {
	return CostModel{Latency: wm.Latency, SecPerByte: wm.SecPerByte}
}

// Loopback is the α–β model of a same-host fleet (loopback TCP or
// unix sockets) — the deployment the distributed shard-serving tests
// and `make dist-smoke` run. Constants were set from MeasureLoopback
// on the reference container (α ≈ 7 µs median RTT, μ ≈ 5×10⁻¹⁰ s/B ≈
// 2 GB/s; see EXPERIMENTS.md "Wire model validation"). Loopback skips
// the NIC entirely, so both constants are far below Ethernet10G's —
// using the cluster model for a same-host fleet overcharges latency
// ~7× and bandwidth ~1.6×.
func Loopback() CostModel {
	return CostModel{Latency: 8 * time.Microsecond, SecPerByte: 5e-10}
}

// MeasureLoopback measures the wire constants over a real loopback
// TCP connection: α from `pings` small ping-pong round trips (median
// RTT), μ from streaming `bytes` through the socket and timing the
// transfer end to end (acknowledged, so the tail is not left sitting
// in kernel buffers). It is a measurement, not a benchmark — a few
// hundred milliseconds for the default sizes.
func MeasureLoopback(pings int, bytes int64) (WireMeasurement, error) {
	if pings <= 0 {
		pings = 100
	}
	if bytes <= 0 {
		bytes = 16 << 20
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return WireMeasurement{}, err
	}
	defer ln.Close()
	srvErr := make(chan error, 1)
	go func() { srvErr <- wireEchoServer(ln, pings, bytes) }()
	c, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		return WireMeasurement{}, err
	}
	defer c.Close()

	// α: small-message ping-pong round trips, median.
	buf := make([]byte, 64)
	rtts := make([]time.Duration, 0, pings)
	for i := 0; i < pings; i++ {
		t0 := time.Now()
		if _, err := c.Write(buf); err != nil {
			return WireMeasurement{}, err
		}
		if _, err := io.ReadFull(c, buf); err != nil {
			return WireMeasurement{}, err
		}
		rtts = append(rtts, time.Since(t0))
	}
	sort.Slice(rtts, func(i, j int) bool { return rtts[i] < rtts[j] })
	alpha := rtts[len(rtts)/2]

	// μ: stream the payload, wait for the server's 1-byte ack so the
	// clock covers delivery, not just enqueueing.
	chunk := make([]byte, 1<<20)
	t0 := time.Now()
	var sent int64
	for sent < bytes {
		n := int64(len(chunk))
		if bytes-sent < n {
			n = bytes - sent
		}
		if _, err := c.Write(chunk[:n]); err != nil {
			return WireMeasurement{}, err
		}
		sent += n
	}
	if _, err := io.ReadFull(c, buf[:1]); err != nil {
		return WireMeasurement{}, err
	}
	elapsed := time.Since(t0)
	if err := <-srvErr; err != nil {
		return WireMeasurement{}, err
	}
	return WireMeasurement{
		Latency:    alpha,
		SecPerByte: elapsed.Seconds() / float64(bytes),
		Bytes:      bytes,
	}, nil
}

// wireEchoServer answers one measurement connection: echo `pings`
// 64-byte messages, then swallow `bytes` of stream and ack with one
// byte.
func wireEchoServer(ln net.Listener, pings int, bytes int64) error {
	c, err := ln.Accept()
	if err != nil {
		return err
	}
	defer c.Close()
	buf := make([]byte, 64)
	for i := 0; i < pings; i++ {
		if _, err := io.ReadFull(c, buf); err != nil {
			return fmt.Errorf("echo read: %w", err)
		}
		if _, err := c.Write(buf); err != nil {
			return fmt.Errorf("echo write: %w", err)
		}
	}
	if _, err := io.CopyN(io.Discard, c, bytes); err != nil {
		return fmt.Errorf("stream read: %w", err)
	}
	if _, err := c.Write(buf[:1]); err != nil {
		return fmt.Errorf("ack write: %w", err)
	}
	return nil
}
