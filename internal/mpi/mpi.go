// Package mpi provides a simulated distributed-memory runtime.
//
// The paper's implementation runs p MPI processes on a cluster wired
// with 10 Gbps Ethernet. This package substitutes a step-synchronous
// simulator: each "rank" executes its share of every SPMD step as a
// plain function, per-rank compute is measured with wall clocks while
// ranks run with bounded physical parallelism, and the simulated time
// of a step is the maximum over ranks (the barrier semantics of a
// bulk-synchronous program). Communication steps are not executed over
// a network; their cost is charged by an α–β model,
//
//	T_comm = τ·⌈log₂ p⌉ + μ·bytes,
//
// the same O(τ log p + μ·nT) form the paper's complexity analysis uses
// for MPI_Allgatherv. This preserves the strong-scaling shape (compute
// shrinks with p, communication grows) without needing a cluster.
package mpi

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"
)

// CostModel parameterizes the α–β communication model.
type CostModel struct {
	// Latency τ is the per-message network latency.
	Latency time.Duration
	// SecPerByte μ is the reciprocal bandwidth.
	SecPerByte float64
}

// Ethernet10G is the cluster interconnect of the paper's test
// platform: 10 Gbps links and ~50 µs MPI latency.
func Ethernet10G() CostModel {
	return CostModel{Latency: 50 * time.Microsecond, SecPerByte: 8.0 / 10e9}
}

// AllgatherCost returns the modeled duration of an allgather in which
// every rank ends up holding `bytes` total payload.
func (m CostModel) AllgatherCost(p int, bytes int64) time.Duration {
	if p <= 1 {
		return 0
	}
	rounds := int(math.Ceil(math.Log2(float64(p))))
	transfer := time.Duration(float64(bytes) * m.SecPerByte * float64(time.Second))
	return time.Duration(rounds)*m.Latency + transfer
}

// StepKind distinguishes compute from communication steps.
type StepKind uint8

const (
	// Compute steps execute rank functions and take the max rank time.
	Compute StepKind = iota
	// Communication steps are charged from the cost model.
	Communication
)

// StepStat records one simulated step.
type StepStat struct {
	Name string
	Kind StepKind
	// Sim is the simulated duration of the step: max over ranks for
	// compute steps, the modeled cost for communication steps.
	Sim time.Duration
	// PerRank holds individual rank durations for compute steps.
	PerRank []time.Duration
	// Bytes is the payload size for communication steps.
	Bytes int64
}

// Imbalance returns max/mean of the per-rank durations of a compute
// step — 1.0 is perfect balance; large values flag stragglers. It
// returns 0 for communication steps and empty stats.
func (s StepStat) Imbalance() float64 {
	if len(s.PerRank) == 0 {
		return 0
	}
	var sum time.Duration
	max := time.Duration(0)
	for _, d := range s.PerRank {
		sum += d
		if d > max {
			max = d
		}
	}
	if sum == 0 {
		return 0
	}
	mean := float64(sum) / float64(len(s.PerRank))
	return float64(max) / mean
}

// Timeline aggregates a run.
type Timeline struct {
	P     int
	Steps []StepStat
}

// Total returns the simulated end-to-end runtime.
func (tl Timeline) Total() time.Duration {
	var d time.Duration
	for _, s := range tl.Steps {
		d += s.Sim
	}
	return d
}

// ComputeTime sums compute steps, CommTime sums communication steps.
func (tl Timeline) ComputeTime() time.Duration {
	var d time.Duration
	for _, s := range tl.Steps {
		if s.Kind == Compute {
			d += s.Sim
		}
	}
	return d
}

// CommTime returns the summed communication cost.
func (tl Timeline) CommTime() time.Duration {
	var d time.Duration
	for _, s := range tl.Steps {
		if s.Kind == Communication {
			d += s.Sim
		}
	}
	return d
}

// CommFraction is CommTime/Total in [0,1] (0 for an empty timeline).
func (tl Timeline) CommFraction() float64 {
	t := tl.Total()
	if t == 0 {
		return 0
	}
	return float64(tl.CommTime()) / float64(t)
}

// Step looks up a step by name (nil when absent).
func (tl Timeline) Step(name string) *StepStat {
	for i := range tl.Steps {
		if tl.Steps[i].Name == name {
			return &tl.Steps[i]
		}
	}
	return nil
}

func (tl Timeline) String() string {
	s := fmt.Sprintf("p=%d total=%v comm=%.1f%%", tl.P, tl.Total().Round(time.Millisecond), 100*tl.CommFraction())
	for _, st := range tl.Steps {
		s += fmt.Sprintf(" | %s=%v", st.Name, st.Sim.Round(time.Millisecond))
	}
	return s
}

// Sim is a step-synchronous simulator of p ranks.
type Sim struct {
	p        int
	model    CostModel
	maxProcs int
	steps    []StepStat
}

// New creates a simulator of p ranks. maxParallel bounds how many rank
// functions execute concurrently (≤0 means GOMAXPROCS); lower values
// give cleaner per-rank timings at the cost of wall time.
func New(p int, model CostModel, maxParallel int) *Sim {
	if p <= 0 {
		panic(fmt.Sprintf("mpi: p=%d must be positive", p))
	}
	if maxParallel <= 0 {
		maxParallel = runtime.GOMAXPROCS(0)
	}
	return &Sim{p: p, model: model, maxProcs: maxParallel}
}

// P returns the simulated rank count.
func (s *Sim) P() int { return s.p }

// Step runs fn for every rank (bounded concurrency), records per-rank
// wall times, and charges the maximum as the step's simulated time.
func (s *Sim) Step(name string, fn func(rank int)) StepStat {
	durations := make([]time.Duration, s.p)
	sem := make(chan struct{}, s.maxProcs)
	var wg sync.WaitGroup
	for r := 0; r < s.p; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			start := time.Now()
			fn(rank)
			durations[rank] = time.Since(start)
		}(r)
	}
	wg.Wait()
	max := time.Duration(0)
	for _, d := range durations {
		if d > max {
			max = d
		}
	}
	st := StepStat{Name: name, Kind: Compute, Sim: max, PerRank: durations}
	s.steps = append(s.steps, st)
	return st
}

// SequentialStep runs fn once (e.g. a shared decode executed once in
// the simulation but logically done by every rank) and charges its
// wall time as the per-rank time of all ranks.
func (s *Sim) SequentialStep(name string, fn func()) StepStat {
	start := time.Now()
	fn()
	d := time.Since(start)
	per := make([]time.Duration, s.p)
	for i := range per {
		per[i] = d
	}
	st := StepStat{Name: name, Kind: Compute, Sim: d, PerRank: per}
	s.steps = append(s.steps, st)
	return st
}

// Allgather charges the modeled cost of an allgather whose aggregate
// payload (the union every rank ends up holding) is `bytes`.
func (s *Sim) Allgather(name string, bytes int64) StepStat {
	st := StepStat{
		Name:  name,
		Kind:  Communication,
		Sim:   s.model.AllgatherCost(s.p, bytes),
		Bytes: bytes,
	}
	s.steps = append(s.steps, st)
	return st
}

// Timeline returns the recorded steps.
func (s *Sim) Timeline() Timeline {
	return Timeline{P: s.p, Steps: append([]StepStat(nil), s.steps...)}
}

// BlockRange computes rank r's half-open share [lo,hi) of n items
// under block distribution, balanced to within one item.
func BlockRange(n, p, r int) (lo, hi int) {
	base := n / p
	rem := n % p
	lo = r*base + min(r, rem)
	hi = lo + base
	if r < rem {
		hi++
	}
	return lo, hi
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
