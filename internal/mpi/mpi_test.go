package mpi

import (
	"testing"
	"testing/quick"
	"time"
)

func TestBlockRangePartitions(t *testing.T) {
	f := func(nRaw, pRaw uint16) bool {
		n := int(nRaw) % 1000
		p := 1 + int(pRaw)%64
		prevHi := 0
		for r := 0; r < p; r++ {
			lo, hi := BlockRange(n, p, r)
			if lo != prevHi || hi < lo {
				return false
			}
			// Balance within one item.
			if hi-lo > n/p+1 {
				return false
			}
			prevHi = hi
		}
		return prevHi == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAllgatherCost(t *testing.T) {
	m := Ethernet10G()
	if got := m.AllgatherCost(1, 1<<30); got != 0 {
		t.Errorf("p=1 cost = %v want 0", got)
	}
	c2 := m.AllgatherCost(2, 1_000_000)
	c4 := m.AllgatherCost(4, 1_000_000)
	if c4 <= c2 {
		t.Errorf("cost should grow with p: %v vs %v", c2, c4)
	}
	// 1 MB over 10 Gbps ≈ 0.8 ms transfer + latency rounds.
	if c2 < 500*time.Microsecond || c2 > 5*time.Millisecond {
		t.Errorf("p=2 1MB cost %v implausible", c2)
	}
	big := m.AllgatherCost(8, 1<<32)
	if big < 3*time.Second {
		t.Errorf("4 GiB should take seconds, got %v", big)
	}
}

func TestSimStepTiming(t *testing.T) {
	s := New(4, Ethernet10G(), 2)
	ran := make([]bool, 4)
	st := s.Step("work", func(rank int) {
		ran[rank] = true
		time.Sleep(time.Duration(rank+1) * time.Millisecond)
	})
	for r, ok := range ran {
		if !ok {
			t.Fatalf("rank %d did not run", r)
		}
	}
	if len(st.PerRank) != 4 {
		t.Fatalf("per-rank times: %v", st.PerRank)
	}
	// Sim time = max over ranks ≥ the slowest sleep.
	if st.Sim < 4*time.Millisecond {
		t.Errorf("sim %v below slowest rank", st.Sim)
	}
	for _, d := range st.PerRank {
		if st.Sim < d {
			t.Errorf("sim %v below rank time %v", st.Sim, d)
		}
	}
}

func TestSequentialStepChargesAllRanks(t *testing.T) {
	s := New(3, Ethernet10G(), 0)
	st := s.SequentialStep("merge", func() { time.Sleep(2 * time.Millisecond) })
	if len(st.PerRank) != 3 {
		t.Fatalf("per-rank: %v", st.PerRank)
	}
	for _, d := range st.PerRank {
		if d != st.Sim {
			t.Errorf("sequential step should charge uniformly: %v vs %v", d, st.Sim)
		}
	}
}

func TestTimelineAccounting(t *testing.T) {
	s := New(2, Ethernet10G(), 0)
	s.Step("a", func(int) { time.Sleep(time.Millisecond) })
	s.Allgather("g", 10_000_000) // 10 MB ≈ 8 ms
	s.Step("b", func(int) { time.Sleep(time.Millisecond) })
	tl := s.Timeline()
	if len(tl.Steps) != 3 {
		t.Fatalf("steps = %d", len(tl.Steps))
	}
	if tl.Total() != tl.ComputeTime()+tl.CommTime() {
		t.Errorf("total %v != compute %v + comm %v", tl.Total(), tl.ComputeTime(), tl.CommTime())
	}
	cf := tl.CommFraction()
	if cf <= 0 || cf >= 1 {
		t.Errorf("comm fraction %v out of (0,1)", cf)
	}
	if tl.Step("g") == nil || tl.Step("missing") != nil {
		t.Error("step lookup broken")
	}
	if tl.Step("g").Kind != Communication || tl.Step("a").Kind != Compute {
		t.Error("step kinds wrong")
	}
	if tl.String() == "" {
		t.Error("timeline render empty")
	}
}

func TestEmptyTimeline(t *testing.T) {
	tl := Timeline{}
	if tl.Total() != 0 || tl.CommFraction() != 0 {
		t.Error("empty timeline should be zero")
	}
}

func TestNewPanicsOnBadP(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(0, Ethernet10G(), 0)
}

func TestImbalance(t *testing.T) {
	st := StepStat{PerRank: []time.Duration{time.Millisecond, time.Millisecond, 4 * time.Millisecond}}
	got := st.Imbalance()
	want := 2.0 // max 4ms / mean 2ms
	if got < want-0.01 || got > want+0.01 {
		t.Errorf("imbalance = %v want %v", got, want)
	}
	if (StepStat{}).Imbalance() != 0 {
		t.Error("empty step should be 0")
	}
	if (StepStat{PerRank: []time.Duration{0, 0}}).Imbalance() != 0 {
		t.Error("zero-duration step should be 0")
	}
	balanced := StepStat{PerRank: []time.Duration{time.Millisecond, time.Millisecond}}
	if balanced.Imbalance() != 1 {
		t.Errorf("balanced = %v", balanced.Imbalance())
	}
}

func TestStepBoundedConcurrency(t *testing.T) {
	s := New(8, Ethernet10G(), 1)
	var active, maxActive int
	s.Step("serial", func(int) {
		active++
		if active > maxActive {
			maxActive = active
		}
		time.Sleep(100 * time.Microsecond)
		active--
	})
	// With maxParallel=1 the closure runs strictly serially, so the
	// unsynchronized counters above are race-free and must never
	// exceed 1.
	if maxActive != 1 {
		t.Errorf("max concurrent ranks = %d want 1", maxActive)
	}
}
