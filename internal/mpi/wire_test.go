package mpi

import (
	"testing"
	"time"
)

// TestMeasureLoopbackSanity: the measurement machinery itself returns
// physically plausible numbers (kept loose — it must pass on any CI
// box, loaded or not).
func TestMeasureLoopbackSanity(t *testing.T) {
	if testing.Short() {
		t.Skip("wire measurement is not a -short test")
	}
	wm, err := MeasureLoopback(50, 8<<20)
	if err != nil {
		t.Fatal(err)
	}
	if wm.Latency <= 0 || wm.Latency > 10*time.Millisecond {
		t.Fatalf("implausible loopback RTT %v", wm.Latency)
	}
	if bw := 1.0 / wm.SecPerByte; bw < 50e6 || bw > 1e12 {
		t.Fatalf("implausible loopback bandwidth %.3g B/s", bw)
	}
	t.Logf("measured: alpha=%v mu=%.3g s/B (%.2f GB/s)", wm.Latency, wm.SecPerByte, 1.0/wm.SecPerByte/1e9)
}

// TestLoopbackModelTracksMeasurement validates the α–β constants the
// simulator charges against the real wire: the Loopback model must
// stay within an order of magnitude of what MeasureLoopback observes.
// The repo's rule (EXPERIMENTS.md "Wire model validation") is to
// re-fit the constants when they drift beyond 2× on a quiet machine;
// the test bound is 10× so a loaded CI worker does not flake while a
// genuinely wrong model (e.g. charging cluster Ethernet latency to a
// same-host fleet, a 7× error) still gets flagged on the latency axis
// it is wrong about... and by the EXPERIMENTS.md comparison table.
func TestLoopbackModelTracksMeasurement(t *testing.T) {
	if testing.Short() {
		t.Skip("wire measurement is not a -short test")
	}
	wm, err := MeasureLoopback(100, 16<<20)
	if err != nil {
		t.Fatal(err)
	}
	model := Loopback()
	if r := ratio(float64(model.Latency), float64(wm.Latency)); r > 10 {
		t.Errorf("model latency %v vs measured %v: %.1fx apart (re-fit Loopback, see EXPERIMENTS.md)",
			model.Latency, wm.Latency, r)
	}
	if r := ratio(model.SecPerByte, wm.SecPerByte); r > 10 {
		t.Errorf("model mu %.3g vs measured %.3g s/B: %.1fx apart (re-fit Loopback, see EXPERIMENTS.md)",
			model.SecPerByte, wm.SecPerByte, r)
	}
	t.Logf("model alpha=%v measured=%v; model mu=%.3g measured=%.3g",
		model.Latency, wm.Latency, model.SecPerByte, wm.SecPerByte)
}

func ratio(a, b float64) float64 {
	if a < b {
		a, b = b, a
	}
	return a / b
}
