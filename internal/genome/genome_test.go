package genome

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/kmer"
	"repro/internal/seq"
)

func TestGenerateBasics(t *testing.T) {
	g, err := Generate(Config{Name: "t", Length: 100_000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Seq) != 100_000 {
		t.Errorf("length %d", len(g.Seq))
	}
	if !seq.IsValid(g.Seq) {
		t.Error("genome contains invalid bases")
	}
	if len(g.Records) != 1 || g.Records[0].ID != "t.chr1" {
		t.Errorf("records = %+v", g.Records)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	c := Config{Length: 50_000, RepeatFraction: 0.2, Seed: 9}
	g1, _ := Generate(c)
	g2, _ := Generate(c)
	if !bytes.Equal(g1.Seq, g2.Seq) {
		t.Error("same config produced different genomes")
	}
	c.Seed = 10
	g3, _ := Generate(c)
	if bytes.Equal(g1.Seq, g3.Seq) {
		t.Error("different seeds produced identical genomes")
	}
}

func TestGenerateGC(t *testing.T) {
	for _, gc := range []float64{0.3, 0.5, 0.7} {
		g, err := Generate(Config{Length: 200_000, GC: gc, Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		got := seq.GC(g.Seq)
		if math.Abs(got-gc) > 0.02 {
			t.Errorf("GC target %v got %v", gc, got)
		}
	}
}

func TestGenerateChromosomes(t *testing.T) {
	g, err := Generate(Config{Length: 100_000, Chromosomes: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Records) != 4 {
		t.Fatalf("got %d chromosomes", len(g.Records))
	}
	total := 0
	for _, r := range g.Records {
		total += len(r.Seq)
	}
	if total != 100_000 {
		t.Errorf("chromosome lengths sum to %d", total)
	}
	chrom, local := g.Locate(60_000)
	if chrom != 2 || local != 10_000 {
		t.Errorf("Locate(60000) = %d,%d", chrom, local)
	}
	if c, l := g.Locate(0); c != 0 || l != 0 {
		t.Errorf("Locate(0) = %d,%d", c, l)
	}
}

func TestRepeatsIncreaseDuplication(t *testing.T) {
	// A repeat-rich genome has far fewer distinct k-mers per base than
	// a repeat-free one.
	plain, err := Generate(Config{Length: 300_000, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	repeaty, err := Generate(Config{Length: 300_000, RepeatFraction: 0.5, RepeatDivergence: 0.0, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	const k = 21
	d1 := len(kmer.Set(plain.Seq, k))
	d2 := len(kmer.Set(repeaty.Seq, k))
	if d2 >= d1 {
		t.Errorf("repeat genome has %d distinct k-mers, plain has %d", d2, d1)
	}
	if float64(d2) > 0.9*float64(d1) {
		t.Errorf("repeat duplication too weak: %d vs %d", d2, d1)
	}
}

func TestValidation(t *testing.T) {
	bad := []Config{
		{Length: 0},
		{Length: 100, GC: 1.5},
		{Length: 100, RepeatFraction: -0.1},
		{Length: 100, RepeatDivergence: 2},
		{Length: 100, RepeatRegionFraction: 1.2},
	}
	for _, c := range bad {
		if _, err := Generate(c); err == nil {
			t.Errorf("config %+v should be rejected", c)
		}
	}
}

func TestGaps(t *testing.T) {
	g, err := Generate(Config{Length: 100_000, GapFraction: 0.1, GapUnit: 500, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, b := range g.Seq {
		if b == 'N' {
			n++
		}
	}
	frac := float64(n) / float64(len(g.Seq))
	if frac < 0.08 || frac > 0.15 {
		t.Errorf("gap fraction %v want ~0.1", frac)
	}
	if _, err := Generate(Config{Length: 1000, GapFraction: 0.9}); err == nil {
		t.Error("absurd gap fraction should fail")
	}
}

func TestTinyGenomeWithRepeats(t *testing.T) {
	// Repeat unit larger than the genome must not hang or panic.
	g, err := Generate(Config{Length: 300, RepeatFraction: 0.5, RepeatUnit: 1000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Seq) != 300 {
		t.Errorf("length %d", len(g.Seq))
	}
}
