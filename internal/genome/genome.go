// Package genome synthesizes reference genomes with controllable
// repeat structure. It substitutes for the NCBI GenBank downloads used
// by the paper: the mapping algorithms are content-agnostic, so the
// quality-relevant properties — length, GC composition, and above all
// repeat density (which drives false-positive mappings on the complex
// eukaryotic inputs) — are exposed as generator knobs.
package genome

import (
	"fmt"
	"math/rand"

	"repro/internal/seq"
)

// Config describes a synthetic genome.
type Config struct {
	// Name labels the genome (used in record IDs).
	Name string
	// Length is the total genome length in bases.
	Length int
	// GC is the target G+C fraction (0..1); 0 means 0.5.
	GC float64
	// RepeatFraction is the fraction of the genome covered by copies
	// of repeat families (0..1). Higher values emulate complex
	// eukaryotic genomes.
	RepeatFraction float64
	// RepeatFamilies is the number of distinct repeat elements; 0
	// picks a default proportional to the repeat fraction.
	RepeatFamilies int
	// RepeatUnit is the length of each repeat element in bases; 0
	// means 500.
	RepeatUnit int
	// RepeatDivergence is the per-base mutation probability applied
	// independently to every planted repeat copy, so copies are
	// near-identical rather than exact (0..1).
	RepeatDivergence float64
	// RepeatRegionFraction confines repeat copies to this fraction of
	// the genome (0..1; 0 means 0.5). Real genomes interleave
	// repeat-dense regions with long clean stretches; the clean
	// stretches are what lets assemblers produce the long contigs on
	// which whole-sequence MinHash degrades, so clustering matters for
	// reproducing the paper's Fig. 6 gap.
	RepeatRegionFraction float64
	// RepeatRegionSize is the granularity of repeat-permitted blocks
	// in bases; 0 means 20000.
	RepeatRegionSize int
	// Heterozygosity plants this per-base SNP rate between the two
	// haplotypes of a diploid genome (0 = haploid). The second
	// haplotype is exposed via Genome.Haplotype2; sequencing both
	// creates the SNP bubbles real assemblers must pop.
	Heterozygosity float64
	// GapFraction covers this fraction of the genome with 'N' runs
	// (assembly gaps / unsequenceable regions, 0..1). Gaps exercise
	// the ambiguity handling of every downstream consumer.
	GapFraction float64
	// GapUnit is the length of each N run; 0 means 1000.
	GapUnit int
	// Chromosomes splits the genome into this many records; 0 means 1.
	Chromosomes int
	// Seed drives the generator; the same config yields the same
	// genome.
	Seed int64
}

// Validate checks config sanity.
func (c Config) Validate() error {
	if c.Length <= 0 {
		return fmt.Errorf("genome: length %d must be positive", c.Length)
	}
	if c.GC < 0 || c.GC > 1 {
		return fmt.Errorf("genome: gc %v out of [0,1]", c.GC)
	}
	if c.RepeatFraction < 0 || c.RepeatFraction > 1 {
		return fmt.Errorf("genome: repeat fraction %v out of [0,1]", c.RepeatFraction)
	}
	if c.RepeatDivergence < 0 || c.RepeatDivergence > 1 {
		return fmt.Errorf("genome: repeat divergence %v out of [0,1]", c.RepeatDivergence)
	}
	if c.RepeatRegionFraction < 0 || c.RepeatRegionFraction > 1 {
		return fmt.Errorf("genome: repeat region fraction %v out of [0,1]", c.RepeatRegionFraction)
	}
	if c.GapFraction < 0 || c.GapFraction > 0.5 {
		return fmt.Errorf("genome: gap fraction %v out of [0,0.5]", c.GapFraction)
	}
	if c.Heterozygosity < 0 || c.Heterozygosity > 0.1 {
		return fmt.Errorf("genome: heterozygosity %v out of [0,0.1]", c.Heterozygosity)
	}
	return nil
}

func (c Config) withDefaults() Config {
	if c.GC == 0 {
		c.GC = 0.5
	}
	if c.RepeatUnit == 0 {
		c.RepeatUnit = 500
	}
	if c.Chromosomes <= 0 {
		c.Chromosomes = 1
	}
	if c.RepeatFamilies <= 0 {
		c.RepeatFamilies = 1 + int(20*c.RepeatFraction)
	}
	if c.RepeatRegionFraction == 0 {
		c.RepeatRegionFraction = 0.5
	}
	if c.RepeatRegionSize == 0 {
		c.RepeatRegionSize = 20000
	}
	if c.Name == "" {
		c.Name = "synthetic"
	}
	return c
}

// Genome is a generated reference: the concatenated sequence plus the
// chromosome records view over it.
type Genome struct {
	Config  Config
	Seq     []byte       // the full concatenated sequence (haplotype 1)
	Records []seq.Record // per-chromosome views aliasing Seq
	// Offsets[i] is the start of Records[i] within Seq.
	Offsets []int
	// Haplotype2 holds the second haplotype's chromosome records when
	// Heterozygosity > 0 (nil otherwise). Coordinates are identical to
	// Records' (SNPs only, no indels), so read ground truth from
	// either haplotype maps onto haplotype-1 coordinates.
	Haplotype2 []seq.Record
}

// Generate builds a genome from the config.
func Generate(c Config) (*Genome, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	c = c.withDefaults()
	rng := rand.New(rand.NewSource(c.Seed))

	s := randomSeq(rng, c.Length, c.GC)
	plantRepeats(rng, s, c)
	plantGaps(rng, s, c)

	g := &Genome{Config: c, Seq: s}
	chrLen := c.Length / c.Chromosomes
	for i := 0; i < c.Chromosomes; i++ {
		start := i * chrLen
		end := start + chrLen
		if i == c.Chromosomes-1 {
			end = c.Length
		}
		g.Offsets = append(g.Offsets, start)
		g.Records = append(g.Records, seq.Record{
			ID:  fmt.Sprintf("%s.chr%d", c.Name, i+1),
			Seq: s[start:end],
		})
	}
	if c.Heterozygosity > 0 {
		h2 := append([]byte(nil), s...)
		for i := range h2 {
			if _, valid := seq.Code(h2[i]); valid && rng.Float64() < c.Heterozygosity {
				h2[i] = mutate(rng, h2[i])
			}
		}
		for i, r := range g.Records {
			start := g.Offsets[i]
			g.Haplotype2 = append(g.Haplotype2, seq.Record{
				ID:  r.ID + ".hap2",
				Seq: h2[start : start+len(r.Seq)],
			})
		}
	}
	return g, nil
}

// randomSeq draws length bases with the given GC fraction.
func randomSeq(rng *rand.Rand, length int, gc float64) []byte {
	s := make([]byte, length)
	for i := range s {
		if rng.Float64() < gc {
			if rng.Intn(2) == 0 {
				s[i] = 'G'
			} else {
				s[i] = 'C'
			}
		} else {
			if rng.Intn(2) == 0 {
				s[i] = 'A'
			} else {
				s[i] = 'T'
			}
		}
	}
	return s
}

// plantRepeats overwrites RepeatFraction of the genome with mutated
// copies of the repeat families. Copies land only inside
// repeat-permitted blocks covering RepeatRegionFraction of the genome,
// so the rest stays clean and assembles into long contigs.
func plantRepeats(rng *rand.Rand, s []byte, c Config) {
	if c.RepeatFraction <= 0 || c.RepeatUnit >= len(s) {
		return
	}
	families := make([][]byte, c.RepeatFamilies)
	for i := range families {
		families[i] = randomSeq(rng, c.RepeatUnit, c.GC)
	}
	// Choose repeat-permitted blocks.
	nBlocks := (len(s) + c.RepeatRegionSize - 1) / c.RepeatRegionSize
	permitted := make([]int, 0, nBlocks)
	for b := 0; b < nBlocks; b++ {
		if rng.Float64() < c.RepeatRegionFraction {
			permitted = append(permitted, b)
		}
	}
	if len(permitted) == 0 {
		permitted = append(permitted, rng.Intn(nBlocks))
	}
	target := int(float64(len(s)) * c.RepeatFraction)
	planted := 0
	attempts := 0
	for planted < target && attempts < 50*nBlocks+1000 {
		attempts++
		fam := families[rng.Intn(len(families))]
		block := permitted[rng.Intn(len(permitted))]
		lo := block * c.RepeatRegionSize
		hi := lo + c.RepeatRegionSize
		if hi > len(s) {
			hi = len(s)
		}
		if hi-lo < len(fam) {
			continue
		}
		pos := lo + rng.Intn(hi-lo-len(fam)+1)
		copyRepeat(rng, s[pos:pos+len(fam)], fam, c.RepeatDivergence)
		planted += len(fam)
	}
}

// plantGaps overwrites GapFraction of the genome with runs of 'N'.
func plantGaps(rng *rand.Rand, s []byte, c Config) {
	if c.GapFraction <= 0 {
		return
	}
	unit := c.GapUnit
	if unit <= 0 {
		unit = 1000
	}
	if unit > len(s) {
		unit = len(s)
	}
	target := int(float64(len(s)) * c.GapFraction)
	planted := 0
	for planted < target {
		pos := rng.Intn(len(s) - unit + 1)
		for i := pos; i < pos+unit; i++ {
			s[i] = 'N'
		}
		planted += unit
	}
}

// copyRepeat writes a possibly reverse-complemented, point-mutated
// copy of fam into dst.
func copyRepeat(rng *rand.Rand, dst, fam []byte, divergence float64) {
	if rng.Intn(2) == 0 {
		copy(dst, fam)
	} else {
		copy(dst, seq.ReverseComplement(fam))
	}
	if divergence <= 0 {
		return
	}
	for i := range dst {
		if rng.Float64() < divergence {
			dst[i] = mutate(rng, dst[i])
		}
	}
}

// mutate returns a uniformly random base different from b.
func mutate(rng *rand.Rand, b byte) byte {
	for {
		nb := seq.Code2Base[rng.Intn(4)]
		if nb != b {
			return nb
		}
	}
}

// Locate maps a global offset on the concatenated sequence to its
// chromosome index and chromosome-local offset.
func (g *Genome) Locate(off int) (chrom, local int) {
	for i := len(g.Offsets) - 1; i >= 0; i-- {
		if off >= g.Offsets[i] {
			return i, off - g.Offsets[i]
		}
	}
	return 0, off
}
