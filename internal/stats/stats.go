// Package stats provides the small numeric and presentation helpers
// the experiment harness uses: running summaries, histograms, and
// fixed-width text tables matching the layout of the paper's tables.
package stats

import (
	"fmt"
	"math"
	"strings"
)

// Summary accumulates count/mean/stddev/min/max online (Welford).
type Summary struct {
	n          int64
	mean, m2   float64
	min, max   float64
	hasExtrema bool
}

// Add folds one observation into the summary.
func (s *Summary) Add(x float64) {
	s.n++
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
	if !s.hasExtrema || x < s.min {
		s.min = x
	}
	if !s.hasExtrema || x > s.max {
		s.max = x
	}
	s.hasExtrema = true
}

// N returns the number of observations.
func (s *Summary) N() int64 { return s.n }

// Mean returns the running mean (0 when empty).
func (s *Summary) Mean() float64 { return s.mean }

// StdDev returns the population standard deviation (0 when n < 2).
func (s *Summary) StdDev() float64 {
	if s.n < 2 {
		return 0
	}
	return math.Sqrt(s.m2 / float64(s.n))
}

// Min and Max return the extrema (0 when empty).
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation.
func (s *Summary) Max() float64 { return s.max }

// Histogram counts observations into uniform bins over [Lo, Hi); out
// of range values clamp into the end bins.
type Histogram struct {
	Lo, Hi float64
	Counts []int64
	total  int64
}

// NewHistogram creates a histogram with `bins` uniform bins on
// [lo, hi). It panics on a non-positive bin count or an empty range —
// both are programming errors in the harness.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 || hi <= lo {
		panic(fmt.Sprintf("stats: invalid histogram [%v,%v) bins=%d", lo, hi, bins))
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int64, bins)}
}

// Add counts one observation.
func (h *Histogram) Add(x float64) {
	i := int(float64(len(h.Counts)) * (x - h.Lo) / (h.Hi - h.Lo))
	if i < 0 {
		i = 0
	}
	if i >= len(h.Counts) {
		i = len(h.Counts) - 1
	}
	h.Counts[i]++
	h.total++
}

// Total returns the number of observations.
func (h *Histogram) Total() int64 { return h.total }

// Fraction returns the share of observations in bin i.
func (h *Histogram) Fraction(i int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.total)
}

// BinLabel renders bin i's range like "95-96".
func (h *Histogram) BinLabel(i int) string {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return fmt.Sprintf("%g-%g", h.Lo+float64(i)*w, h.Lo+float64(i+1)*w)
}

// Render draws the histogram as rows of "label count bar".
func (h *Histogram) Render(barWidth int) string {
	var b strings.Builder
	maxC := int64(1)
	for _, c := range h.Counts {
		if c > maxC {
			maxC = c
		}
	}
	for i, c := range h.Counts {
		bar := strings.Repeat("#", int(int64(barWidth)*c/maxC))
		fmt.Fprintf(&b, "%10s %9d %6.2f%% %s\n", h.BinLabel(i), c, 100*h.Fraction(i), bar)
	}
	return b.String()
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) of the histogram's
// observations by linear interpolation inside the uniform bin holding
// the target rank. Returns Lo when empty.
func (h *Histogram) Quantile(q float64) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	uppers := make([]float64, len(h.Counts))
	for i := range uppers {
		uppers[i] = h.Lo + float64(i+1)*w
	}
	// The uniform-bin histogram clamps out-of-range values into its end
	// bins, so there is no overflow bucket: pass a zero one.
	if h.total == 0 {
		return h.Lo
	}
	return QuantileFromBuckets(uppers, append(append([]int64(nil), h.Counts...), 0), q)
}

// QuantileFromBuckets estimates the q-quantile (0 ≤ q ≤ 1) of
// bucketed observations: uppers holds strictly increasing finite
// upper bounds, and counts holds len(uppers)+1 per-bucket counts, the
// last being the overflow bucket for values above the largest bound.
// The estimate interpolates linearly inside the bucket containing the
// target rank (a bucket's lower edge is the previous upper bound, or
// 0 for the first — the latency-histogram convention); ranks landing
// in the overflow bucket clamp to the largest finite bound. Returns 0
// when there are no observations.
func QuantileFromBuckets(uppers []float64, counts []int64, q float64) float64 {
	if len(uppers) == 0 || len(counts) != len(uppers)+1 {
		panic(fmt.Sprintf("stats: quantile needs len(counts)=len(uppers)+1, got %d and %d", len(counts), len(uppers)))
	}
	var total int64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum int64
	for i, c := range counts {
		cum += c
		if float64(cum) >= rank && c > 0 {
			if i == len(uppers) {
				return uppers[len(uppers)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = uppers[i-1]
			}
			frac := (rank - float64(cum-c)) / float64(c)
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			return lo + (uppers[i]-lo)*frac
		}
	}
	return uppers[len(uppers)-1]
}

// Table renders fixed-width text tables.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// AddRow appends a row; cells render with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// Mean of a float slice (0 when empty).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev of a float slice (population; 0 when n < 2).
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		s += (x - m) * (x - m)
	}
	return math.Sqrt(s / float64(len(xs)))
}
