package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Errorf("N = %d", s.N())
	}
	if s.Mean() != 5 {
		t.Errorf("mean = %v", s.Mean())
	}
	if math.Abs(s.StdDev()-2) > 1e-9 {
		t.Errorf("stddev = %v want 2", s.StdDev())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("extrema = %v,%v", s.Min(), s.Max())
	}
}

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.StdDev() != 0 || s.N() != 0 {
		t.Error("empty summary should be zero")
	}
}

func TestSummaryMatchesBatch(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(100)
		xs := make([]float64, n)
		var s Summary
		for i := range xs {
			xs[i] = rng.NormFloat64() * 100
			s.Add(xs[i])
		}
		return math.Abs(s.Mean()-Mean(xs)) < 1e-6 &&
			math.Abs(s.StdDev()-StdDev(xs)) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	h.Add(-5)  // clamps to first bin
	h.Add(100) // clamps to last bin
	if h.Total() != 12 {
		t.Errorf("total = %d", h.Total())
	}
	if h.Counts[0] != 2 || h.Counts[9] != 2 {
		t.Errorf("clamping failed: %v", h.Counts)
	}
	if h.Fraction(0) != 2.0/12 {
		t.Errorf("fraction = %v", h.Fraction(0))
	}
	if h.BinLabel(0) != "0-1" {
		t.Errorf("label = %q", h.BinLabel(0))
	}
	render := h.Render(20)
	if !strings.Contains(render, "#") || strings.Count(render, "\n") != 10 {
		t.Errorf("render = %q", render)
	}
}

func TestHistogramPanicsOnBadConfig(t *testing.T) {
	for _, f := range []func(){
		func() { NewHistogram(0, 10, 0) },
		func() { NewHistogram(10, 10, 5) },
		func() { NewHistogram(10, 0, 5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("name", "value")
	tb.AddRow("alpha", 1)
	tb.AddRow("a-much-longer-name", 2.5)
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "name") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[3], "2.50") {
		t.Errorf("float formatting: %q", lines[3])
	}
	// Columns aligned: both data rows have the value at the same offset.
	if strings.Index(lines[2], "1") <= strings.Index(lines[2], "alpha") {
		t.Errorf("row = %q", lines[2])
	}
}

func TestMeanStdDevEdge(t *testing.T) {
	if Mean(nil) != 0 || StdDev(nil) != 0 || StdDev([]float64{5}) != 0 {
		t.Error("edge cases should be zero")
	}
}

func TestQuantileFromBuckets(t *testing.T) {
	uppers := []float64{1, 2, 3, 4}
	// 10 observations per bucket, none overflowing.
	counts := []int64{10, 10, 10, 10, 0}
	cases := []struct{ q, want float64 }{
		{0, 0}, {0.25, 1}, {0.5, 2}, {0.75, 3}, {1, 4}, {0.125, 0.5},
	}
	for _, c := range cases {
		if got := QuantileFromBuckets(uppers, counts, c.q); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	// Overflow ranks clamp to the largest finite bound.
	if got := QuantileFromBuckets(uppers, []int64{0, 0, 0, 0, 5}, 0.5); got != 4 {
		t.Errorf("overflow quantile = %v, want 4", got)
	}
	// Empty histograms report zero.
	if got := QuantileFromBuckets(uppers, make([]int64, 5), 0.5); got != 0 {
		t.Errorf("empty quantile = %v, want 0", got)
	}
	// Out-of-range q clamps.
	if got := QuantileFromBuckets(uppers, counts, 7); got != 4 {
		t.Errorf("q>1 quantile = %v, want 4", got)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(0, 100, 10)
	for i := 0; i < 1000; i++ {
		h.Add(float64(i) / 10) // uniform on [0,100)
	}
	for _, q := range []float64{0.1, 0.5, 0.9} {
		if got, want := h.Quantile(q), 100*q; math.Abs(got-want) > 10 {
			t.Errorf("Quantile(%v) = %v, want within a bin of %v", q, got, want)
		}
	}
	empty := NewHistogram(5, 10, 2)
	if got := empty.Quantile(0.5); got != 5 {
		t.Errorf("empty histogram quantile = %v, want Lo", got)
	}
}
