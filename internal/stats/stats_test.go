package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Errorf("N = %d", s.N())
	}
	if s.Mean() != 5 {
		t.Errorf("mean = %v", s.Mean())
	}
	if math.Abs(s.StdDev()-2) > 1e-9 {
		t.Errorf("stddev = %v want 2", s.StdDev())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("extrema = %v,%v", s.Min(), s.Max())
	}
}

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.StdDev() != 0 || s.N() != 0 {
		t.Error("empty summary should be zero")
	}
}

func TestSummaryMatchesBatch(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(100)
		xs := make([]float64, n)
		var s Summary
		for i := range xs {
			xs[i] = rng.NormFloat64() * 100
			s.Add(xs[i])
		}
		return math.Abs(s.Mean()-Mean(xs)) < 1e-6 &&
			math.Abs(s.StdDev()-StdDev(xs)) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	h.Add(-5)  // clamps to first bin
	h.Add(100) // clamps to last bin
	if h.Total() != 12 {
		t.Errorf("total = %d", h.Total())
	}
	if h.Counts[0] != 2 || h.Counts[9] != 2 {
		t.Errorf("clamping failed: %v", h.Counts)
	}
	if h.Fraction(0) != 2.0/12 {
		t.Errorf("fraction = %v", h.Fraction(0))
	}
	if h.BinLabel(0) != "0-1" {
		t.Errorf("label = %q", h.BinLabel(0))
	}
	render := h.Render(20)
	if !strings.Contains(render, "#") || strings.Count(render, "\n") != 10 {
		t.Errorf("render = %q", render)
	}
}

func TestHistogramPanicsOnBadConfig(t *testing.T) {
	for _, f := range []func(){
		func() { NewHistogram(0, 10, 0) },
		func() { NewHistogram(10, 10, 5) },
		func() { NewHistogram(10, 0, 5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("name", "value")
	tb.AddRow("alpha", 1)
	tb.AddRow("a-much-longer-name", 2.5)
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "name") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[3], "2.50") {
		t.Errorf("float formatting: %q", lines[3])
	}
	// Columns aligned: both data rows have the value at the same offset.
	if strings.Index(lines[2], "1") <= strings.Index(lines[2], "alpha") {
		t.Errorf("row = %q", lines[2])
	}
}

func TestMeanStdDevEdge(t *testing.T) {
	if Mean(nil) != 0 || StdDev(nil) != 0 || StdDev([]float64{5}) != 0 {
		t.Error("edge cases should be zero")
	}
}
