package kmer

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/seq"
)

func randDNA(rng *rand.Rand, n int) []byte {
	s := make([]byte, n)
	for i := range s {
		s[i] = seq.Code2Base[rng.Intn(4)]
	}
	return s
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		k := 1 + int(kRaw)%MaxK
		rng := rand.New(rand.NewSource(seed))
		s := randDNA(rng, k)
		w, ok := Encode(s, k)
		if !ok {
			return false
		}
		return bytes.Equal(Decode(w, k), s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEncodeRejects(t *testing.T) {
	if _, ok := Encode([]byte("ACG"), 4); ok {
		t.Error("short input should fail")
	}
	if _, ok := Encode([]byte("ACNG"), 4); ok {
		t.Error("ambiguous base should fail")
	}
	if _, ok := Encode([]byte("ACGT"), 0); ok {
		t.Error("k=0 should fail")
	}
	if _, ok := Encode(bytes.Repeat([]byte("A"), 40), 32); ok {
		t.Error("k>MaxK should fail")
	}
}

func TestEncodeLexicographicOrder(t *testing.T) {
	// Numeric order of packed words must equal lexicographic order of
	// strings — the property the minimizer ordering relies on.
	rng := rand.New(rand.NewSource(7))
	const k = 9
	for i := 0; i < 1000; i++ {
		a := randDNA(rng, k)
		b := randDNA(rng, k)
		wa, _ := Encode(a, k)
		wb, _ := Encode(b, k)
		if (wa < wb) != (bytes.Compare(a, b) < 0) || (wa == wb) != bytes.Equal(a, b) {
			t.Fatalf("order mismatch: %q (%d) vs %q (%d)", a, wa, b, wb)
		}
	}
}

func TestReverseComplementMatchesString(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		k := 1 + int(kRaw)%MaxK
		rng := rand.New(rand.NewSource(seed))
		s := randDNA(rng, k)
		w, _ := Encode(s, k)
		want, _ := Encode(seq.ReverseComplement(s), k)
		return ReverseComplement(w, k) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReverseComplementInvolution(t *testing.T) {
	f := func(w uint64, kRaw uint8) bool {
		k := 1 + int(kRaw)%MaxK
		x := Word(w) & Mask(k)
		return ReverseComplement(ReverseComplement(x, k), k) == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCanonicalSymmetry(t *testing.T) {
	// canonical(w) == canonical(revcomp(w)), and canonical is one of the two.
	f := func(w uint64, kRaw uint8) bool {
		k := 1 + int(kRaw)%MaxK
		x := Word(w) & Mask(k)
		rc := ReverseComplement(x, k)
		c := Canonical(x, k)
		return c == Canonical(rc, k) && (c == x || c == rc) && c <= x && c <= rc
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIteratorMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		k := 1 + rng.Intn(12)
		n := rng.Intn(200)
		s := randDNA(rng, n)
		// Sprinkle ambiguity.
		for i := range s {
			if rng.Intn(20) == 0 {
				s[i] = 'N'
			}
		}
		it := NewIterator(s, k)
		var got []struct {
			fwd, canon Word
			pos        int
		}
		for {
			fwd, canon, pos, ok := it.Next()
			if !ok {
				break
			}
			got = append(got, struct {
				fwd, canon Word
				pos        int
			}{fwd, canon, pos})
		}
		var want []struct {
			fwd, canon Word
			pos        int
		}
		for i := 0; i+k <= len(s); i++ {
			w, ok := Encode(s[i:i+k], k)
			if !ok {
				continue
			}
			want = append(want, struct {
				fwd, canon Word
				pos        int
			}{w, Canonical(w, k), i})
		}
		if len(got) != len(want) {
			t.Fatalf("k=%d: got %d k-mers want %d", k, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("k=%d idx=%d: got %+v want %+v", k, i, got[i], want[i])
			}
		}
	}
}

func TestIteratorPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for k=0")
		}
	}()
	NewIterator([]byte("ACGT"), 0)
}

func TestCount(t *testing.T) {
	if got := Count([]byte("ACGTACGT"), 4); got != 5 {
		t.Errorf("Count = %d want 5", got)
	}
	if got := Count([]byte("ACGNACGT"), 4); got != 1 {
		t.Errorf("Count with N = %d want 1", got)
	}
	if got := Count([]byte("AC"), 4); got != 0 {
		t.Errorf("Count short = %d want 0", got)
	}
}

func TestSetCanonicalizes(t *testing.T) {
	s := []byte("ACGTAC")
	rc := seq.ReverseComplement(s)
	a := Set(s, 4)
	b := Set(rc, 4)
	if len(a) != len(b) {
		t.Fatalf("set sizes differ: %d vs %d", len(a), len(b))
	}
	for w := range a {
		if _, ok := b[w]; !ok {
			t.Fatalf("word %d missing from revcomp set", w)
		}
	}
}

func TestJaccard(t *testing.T) {
	a := []byte("ACGTACGTAA")
	if got := Jaccard(a, a, 4); got != 1 {
		t.Errorf("self Jaccard = %v want 1", got)
	}
	if got := Jaccard(a, seq.ReverseComplement(a), 4); got != 1 {
		t.Errorf("revcomp Jaccard = %v want 1", got)
	}
	b := []byte("GGGGGGGGGG")
	if got := Jaccard(a, b, 4); got != 0 {
		t.Errorf("disjoint Jaccard = %v want 0", got)
	}
	if got := Jaccard(nil, nil, 4); got != 0 {
		t.Errorf("empty Jaccard = %v want 0", got)
	}
}

func TestJaccardSymmetricAndBounded(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randDNA(rng, 20+rng.Intn(100))
		b := randDNA(rng, 20+rng.Intn(100))
		j1 := Jaccard(a, b, 8)
		j2 := Jaccard(b, a, 8)
		return j1 == j2 && j1 >= 0 && j1 <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
