// Package kmer implements compact k-mer encoding and iteration.
//
// A k-mer (k ≤ 31) is packed into a uint64 with 2 bits per base using
// the a=0, c=1, g=2, t=3 code, most significant base first. With that
// ordering, numeric comparison of packed values is identical to
// lexicographic comparison of the corresponding strings — the property
// the minimizer and sketch layers depend on (the paper uses the
// lexicographically smallest k-mer as its minimizer ordering).
//
// The canonical form of a k-mer is the smaller of the k-mer and its
// reverse complement; the canonical rank doubles as the integer x fed
// to the sketch hash family h_t(x) = (A_t·x + B_t) mod P_t.
package kmer

import (
	"fmt"
	"math/bits"

	"repro/internal/seq"
)

// MaxK is the largest supported k-mer size (2 bits per base in a uint64,
// one spare pair kept so that window arithmetic cannot overflow).
const MaxK = 31

// Word is a packed k-mer.
type Word uint64

// Encode packs s[:k] into a Word. It returns ok=false when s is shorter
// than k or contains a non-ACGT base.
func Encode(s []byte, k int) (Word, bool) {
	if k <= 0 || k > MaxK || len(s) < k {
		return 0, false
	}
	var w Word
	for i := 0; i < k; i++ {
		c, ok := seq.Code(s[i])
		if !ok {
			return 0, false
		}
		w = w<<2 | Word(c)
	}
	return w, true
}

// Decode expands w back into its k-base string.
func Decode(w Word, k int) []byte {
	out := make([]byte, k)
	for i := k - 1; i >= 0; i-- {
		out[i] = seq.Base(byte(w & 3))
		w >>= 2
	}
	return out
}

// String renders w as a k-base string for diagnostics.
func (w Word) String() string { return fmt.Sprintf("%d", uint64(w)) }

// ReverseComplement returns the reverse complement of a packed k-mer.
func ReverseComplement(w Word, k int) Word {
	// Complement: a<->t (0<->3), c<->g (1<->2) is bitwise NOT on 2-bit
	// codes. Then reverse the 2-bit groups.
	v := uint64(^w)
	v = bits.ReverseBytes64(v)
	// Swap 2-bit pairs within each byte: abcd efgh -> ghef cdab per
	// 2-bit group. Reverse within bytes using masks.
	v = (v&0x3333333333333333)<<2 | (v>>2)&0x3333333333333333
	v = (v&0x0F0F0F0F0F0F0F0F)<<4 | (v>>4)&0x0F0F0F0F0F0F0F0F
	return Word(v >> (64 - 2*uint(k)))
}

// Canonical returns the canonical form of w: min(w, revcomp(w)).
func Canonical(w Word, k int) Word {
	rc := ReverseComplement(w, k)
	if rc < w {
		return rc
	}
	return w
}

// Mask returns the 2k-bit mask for k-mers of size k.
func Mask(k int) Word { return Word(1)<<(2*uint(k)) - 1 }

// Iterator produces successive packed k-mers of a sequence with O(1)
// work per base (rolling update), skipping over windows that contain
// ambiguous bases.
type Iterator struct {
	s    []byte
	k    int
	mask Word
	pos  int  // index of the NEXT base to consume
	have int  // number of valid bases currently accumulated (≤ k)
	fwd  Word // forward strand rolling word
	rc   Word // reverse complement rolling word
}

// NewIterator constructs an iterator over s with k-mer size k.
// k must be in [1, MaxK].
func NewIterator(s []byte, k int) *Iterator {
	if k <= 0 || k > MaxK {
		panic(fmt.Sprintf("kmer: k=%d out of range [1,%d]", k, MaxK))
	}
	return &Iterator{s: s, k: k, mask: Mask(k)}
}

// Next advances to the next k-mer. It returns the forward-strand word,
// its canonical form, the start position of the k-mer in the sequence,
// and ok=false when the sequence is exhausted.
func (it *Iterator) Next() (fwd, canon Word, pos int, ok bool) {
	for it.pos < len(it.s) {
		c, valid := seq.Code(it.s[it.pos])
		it.pos++
		if !valid {
			it.have = 0
			continue
		}
		it.fwd = (it.fwd<<2 | Word(c)) & it.mask
		// Prepend complement at the high end of the rc word.
		it.rc = it.rc>>2 | Word(3-c)<<(2*uint(it.k-1))
		if it.have < it.k {
			it.have++
		}
		if it.have == it.k {
			canon := it.fwd
			if it.rc < canon {
				canon = it.rc
			}
			return it.fwd, canon, it.pos - it.k, true
		}
	}
	return 0, 0, 0, false
}

// Count returns the number of k-mers Next would yield for s — i.e. the
// number of length-k windows free of ambiguous bases.
func Count(s []byte, k int) int {
	n, run := 0, 0
	for _, b := range s {
		if _, ok := seq.Code(b); ok {
			run++
			if run >= k {
				n++
			}
		} else {
			run = 0
		}
	}
	return n
}

// Set collects the distinct canonical k-mers of s.
func Set(s []byte, k int) map[Word]struct{} {
	out := make(map[Word]struct{}, len(s))
	it := NewIterator(s, k)
	for {
		_, canon, _, ok := it.Next()
		if !ok {
			return out
		}
		out[canon] = struct{}{}
	}
}

// Jaccard computes the exact Jaccard similarity between the canonical
// k-mer sets of a and b. It returns 0 when both sets are empty.
func Jaccard(a, b []byte, k int) float64 {
	sa := Set(a, k)
	sb := Set(b, k)
	if len(sa) == 0 && len(sb) == 0 {
		return 0
	}
	inter := 0
	small, large := sa, sb
	if len(sb) < len(sa) {
		small, large = sb, sa
	}
	for w := range small {
		if _, ok := large[w]; ok {
			inter++
		}
	}
	union := len(sa) + len(sb) - inter
	return float64(inter) / float64(union)
}
