// Package experiments wires the whole system into the paper's
// evaluation: dataset synthesis standing in for the eight inputs of
// Table I, and one runner per table/figure of §IV. Each runner
// returns structured results plus a text rendering that mirrors the
// paper's presentation.
package experiments

import (
	"fmt"
	"sync"

	"repro"
	"repro/internal/simulate"
)

// Spec describes one paper input, parameterized by a genome-length
// scale factor so the suite runs anywhere from laptop tests (scale
// 0.002) to hours-long full runs.
type Spec struct {
	// Name tags the dataset after the organism it stands in for.
	Name string
	// PaperGenomeLen is the original genome length in bp.
	PaperGenomeLen int
	// RepeatFraction and RepeatDivergence control complexity.
	RepeatFraction   float64
	RepeatDivergence float64
	// HiFiCoverage and HiFiMedianLen configure the long-read run.
	HiFiCoverage  float64
	HiFiMedianLen int
	// Real marks the O. sativa-style real-data stand-in.
	Real bool
	// Seed fixes the dataset.
	Seed int64
}

// PaperSpecs returns the eight inputs of Table I. The first six are
// the simulated-read genomes of Figs. 5–8; the last is the real-data
// stand-in of Fig. 9 (longer reads). Repeat fractions rise with the
// organisms' actual repeat content, which is what drives the paper's
// precision separation on complex genomes.
func PaperSpecs() []Spec {
	return []Spec{
		{Name: "ecoli-like", PaperGenomeLen: 4_641_652, RepeatFraction: 0.02, RepeatDivergence: 0.02, HiFiCoverage: 10, HiFiMedianLen: 10000, Seed: 101},
		{Name: "paeruginosa-like", PaperGenomeLen: 6_264_404, RepeatFraction: 0.03, RepeatDivergence: 0.02, HiFiCoverage: 10, HiFiMedianLen: 10000, Seed: 102},
		{Name: "celegans-like", PaperGenomeLen: 100_286_401, RepeatFraction: 0.15, RepeatDivergence: 0.05, HiFiCoverage: 10, HiFiMedianLen: 10000, Seed: 103},
		{Name: "dbusckii-like", PaperGenomeLen: 118_492_362, RepeatFraction: 0.20, RepeatDivergence: 0.05, HiFiCoverage: 10, HiFiMedianLen: 10000, Seed: 104},
		{Name: "human7-like", PaperGenomeLen: 159_345_973, RepeatFraction: 0.35, RepeatDivergence: 0.08, HiFiCoverage: 10, HiFiMedianLen: 9600, Seed: 105},
		{Name: "human8-like", PaperGenomeLen: 145_138_636, RepeatFraction: 0.35, RepeatDivergence: 0.08, HiFiCoverage: 10, HiFiMedianLen: 10000, Seed: 106},
		{Name: "bsplendens-like", PaperGenomeLen: 339_050_970, RepeatFraction: 0.25, RepeatDivergence: 0.06, HiFiCoverage: 10, HiFiMedianLen: 10000, Seed: 107},
		{Name: "osativa-like", PaperGenomeLen: 28_443_022, RepeatFraction: 0.30, RepeatDivergence: 0.06, HiFiCoverage: 12, HiFiMedianLen: 19642, Real: true, Seed: 108},
	}
}

// SimSpecs returns the six simulated-read genomes (Fig. 5's x-axis).
func SimSpecs() []Spec {
	all := PaperSpecs()
	return all[:6]
}

// SpecByName finds a spec; ok=false when unknown.
func SpecByName(name string) (Spec, bool) {
	for _, s := range PaperSpecs() {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// GenomeLen returns the scaled genome length, floored at 50 kbp so
// tiny scales still assemble.
func (s Spec) GenomeLen(scale float64) int {
	n := int(float64(s.PaperGenomeLen) * scale)
	if n < 50_000 {
		n = 50_000
	}
	return n
}

// Dataset bundles a built input with its ground truth and benchmark.
type Dataset struct {
	Spec  Spec
	Scale float64
	*jem.Dataset
}

// TruthReads exposes the simulation ground truth.
func (d *Dataset) TruthReads() []simulate.Read { return d.Dataset.Truth }

var (
	cacheMu sync.Mutex
	cache   = map[string]*Dataset{}
)

// Build synthesizes (or returns the cached) dataset for a spec at the
// given scale. Builds are cached per (name, scale) for the lifetime of
// the process, so a suite touching the same inputs repeatedly pays
// assembly cost once.
func Build(spec Spec, scale float64) (*Dataset, error) {
	key := fmt.Sprintf("%s@%g", spec.Name, scale)
	cacheMu.Lock()
	if d, ok := cache[key]; ok {
		cacheMu.Unlock()
		return d, nil
	}
	cacheMu.Unlock()

	ds, err := jem.Synthesize(jem.SynthesisConfig{
		Name:             spec.Name,
		GenomeLength:     spec.GenomeLen(scale),
		RepeatFraction:   spec.RepeatFraction,
		RepeatDivergence: spec.RepeatDivergence,
		HiFiCoverage:     spec.HiFiCoverage,
		HiFiMedianLen:    spec.HiFiMedianLen,
		Seed:             spec.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: build %s: %w", spec.Name, err)
	}
	d := &Dataset{Spec: spec, Scale: scale, Dataset: ds}
	cacheMu.Lock()
	cache[key] = d
	cacheMu.Unlock()
	return d, nil
}

// DropCaches clears the dataset cache (tests use it to bound memory).
func DropCaches() {
	cacheMu.Lock()
	cache = map[string]*Dataset{}
	cacheMu.Unlock()
}
