package experiments

import (
	"fmt"
	"io"
	"time"

	"repro"
	"repro/internal/dist"
	"repro/internal/mashmap"
	"repro/internal/parallel"
	"repro/internal/sketch"
	"repro/internal/stats"
)

// ScalingRow is one dataset of Table II: simulated JEM-mapper runtime
// per process count plus the Mashmap-baseline multithreaded runtime.
type ScalingRow struct {
	Dataset string
	P       []int
	// JEMRuntime[i] is the simulated distributed runtime at P[i].
	JEMRuntime []time.Duration
	// MashmapRuntime is the measured shared-memory baseline runtime
	// using all available threads (the paper's t=64 column).
	MashmapRuntime time.Duration
}

// Speedup returns JEMRuntime[0]/JEMRuntime[i] — relative speedup
// against the smallest p, the statistic the paper quotes.
func (r ScalingRow) Speedup(i int) float64 {
	if r.JEMRuntime[i] == 0 {
		return 0
	}
	return float64(r.JEMRuntime[0]) / float64(r.JEMRuntime[i])
}

// Table2 reproduces the strong-scaling study: for every dataset, run
// the simulated distributed mapper at each p and the Mashmap baseline
// with full threading.
func Table2(specs []Spec, scale float64, ps []int, opts jem.Options) ([]ScalingRow, error) {
	rows := make([]ScalingRow, 0, len(specs))
	for _, spec := range specs {
		d, err := Build(spec, scale)
		if err != nil {
			return nil, err
		}
		row := ScalingRow{Dataset: spec.Name, P: ps}
		for _, p := range ps {
			out, err := runDistributed(d, p, opts)
			if err != nil {
				return nil, err
			}
			row.JEMRuntime = append(row.JEMRuntime, out.Timeline.Total())
		}
		// Mashmap baseline: measured wall time (index + map) with all
		// threads, mirroring the paper's 64-thread runs.
		start := time.Now()
		mm := mashmap.NewMapper(d.Contigs, mashmap.Params{
			K: opts.K, W: opts.W, SegLen: opts.SegmentLen,
		}, parallel.Workers(opts.Workers))
		mm.MapReads(d.Reads, opts.SegmentLen, parallel.Workers(opts.Workers))
		row.MashmapRuntime = time.Since(start)
		rows = append(rows, row)
	}
	return rows, nil
}

func runDistributed(d *Dataset, p int, opts jem.Options) (*dist.Output, error) {
	return dist.Run(d.Contigs, d.Reads, dist.Config{
		P:      p,
		Params: jemParams(opts),
	})
}

// RenderTable2 writes the scaling table in the paper's layout.
func RenderTable2(w io.Writer, rows []ScalingRow) {
	if len(rows) == 0 {
		return
	}
	header := []string{"Input"}
	for _, p := range rows[0].P {
		header = append(header, fmt.Sprintf("p=%d", p))
	}
	header = append(header, "Mashmap(all threads)", "speedup p_max vs p_min", "JEM vs Mashmap at p_max")
	t := stats.NewTable(header...)
	for _, r := range rows {
		cells := []interface{}{r.Dataset}
		for _, d := range r.JEMRuntime {
			cells = append(cells, fmtDur(d))
		}
		last := len(r.JEMRuntime) - 1
		vsMash := 0.0
		if r.JEMRuntime[last] > 0 {
			vsMash = float64(r.MashmapRuntime) / float64(r.JEMRuntime[last])
		}
		cells = append(cells, fmtDur(r.MashmapRuntime),
			fmt.Sprintf("%.2fx", r.Speedup(last)), fmt.Sprintf("%.2fx", vsMash))
		t.AddRow(cells...)
	}
	fmt.Fprintln(w, "Table II: strong scaling (simulated distributed runtime)")
	fmt.Fprint(w, t.String())
}

// BreakdownRow is Fig. 7a: per-step simulated time at a fixed p.
type BreakdownRow struct {
	Dataset string
	P       int
	Steps   []jem.StepTime
	Total   time.Duration
}

// Fig7a reproduces the runtime breakdown at p=16.
func Fig7a(specs []Spec, scale float64, p int, opts jem.Options) ([]BreakdownRow, error) {
	rows := make([]BreakdownRow, 0, len(specs))
	for _, spec := range specs {
		d, err := Build(spec, scale)
		if err != nil {
			return nil, err
		}
		out, err := runDistributed(d, p, opts)
		if err != nil {
			return nil, err
		}
		row := BreakdownRow{Dataset: spec.Name, P: p, Total: out.Timeline.Total()}
		for _, st := range out.Timeline.Steps {
			row.Steps = append(row.Steps, jem.StepTime{Name: st.Name, Duration: st.Sim})
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderFig7a writes the per-step breakdown.
func RenderFig7a(w io.Writer, rows []BreakdownRow) {
	if len(rows) == 0 {
		return
	}
	header := []string{"Input"}
	for _, st := range rows[0].Steps {
		header = append(header, st.Name)
	}
	header = append(header, "total")
	t := stats.NewTable(header...)
	for _, r := range rows {
		cells := []interface{}{r.Dataset}
		for _, st := range r.Steps {
			cells = append(cells, fmtDur(st.Duration))
		}
		cells = append(cells, fmtDur(r.Total))
		t.AddRow(cells...)
	}
	fmt.Fprintf(w, "Fig. 7a: runtime breakdown by step (p=%d)\n", rows[0].P)
	fmt.Fprint(w, t.String())
}

// ThroughputRow is Fig. 7b: querying throughput per p.
type ThroughputRow struct {
	Dataset    string
	P          []int
	Throughput []float64 // query segments per simulated second
}

// Fig7b reproduces the querying-throughput scaling.
func Fig7b(specs []Spec, scale float64, ps []int, opts jem.Options) ([]ThroughputRow, error) {
	rows := make([]ThroughputRow, 0, len(specs))
	for _, spec := range specs {
		d, err := Build(spec, scale)
		if err != nil {
			return nil, err
		}
		row := ThroughputRow{Dataset: spec.Name, P: ps}
		for _, p := range ps {
			out, err := runDistributed(d, p, opts)
			if err != nil {
				return nil, err
			}
			row.Throughput = append(row.Throughput, out.Throughput())
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderFig7b writes the throughput series.
func RenderFig7b(w io.Writer, rows []ThroughputRow) {
	if len(rows) == 0 {
		return
	}
	header := []string{"Input"}
	for _, p := range rows[0].P {
		header = append(header, fmt.Sprintf("p=%d", p))
	}
	t := stats.NewTable(header...)
	for _, r := range rows {
		cells := []interface{}{r.Dataset}
		for _, th := range r.Throughput {
			cells = append(cells, fmt.Sprintf("%.0f q/s", th))
		}
		t.AddRow(cells...)
	}
	fmt.Fprintln(w, "Fig. 7b: querying throughput (query segments per simulated second)")
	fmt.Fprint(w, t.String())
}

// CommRow is Fig. 8: computation vs communication percentages per p.
type CommRow struct {
	Dataset string
	P       []int
	CommPct []float64
	CompPct []float64
}

// Fig8 reproduces the computation/communication split for the chosen
// datasets (Human chr 7 and B. splendens in the paper).
func Fig8(specs []Spec, scale float64, ps []int, opts jem.Options) ([]CommRow, error) {
	rows := make([]CommRow, 0, len(specs))
	for _, spec := range specs {
		d, err := Build(spec, scale)
		if err != nil {
			return nil, err
		}
		row := CommRow{Dataset: spec.Name, P: ps}
		for _, p := range ps {
			out, err := runDistributed(d, p, opts)
			if err != nil {
				return nil, err
			}
			cf := out.Timeline.CommFraction()
			row.CommPct = append(row.CommPct, 100*cf)
			row.CompPct = append(row.CompPct, 100*(1-cf))
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderFig8 writes the split percentages.
func RenderFig8(w io.Writer, rows []CommRow) {
	if len(rows) == 0 {
		return
	}
	header := []string{"Input", "kind"}
	for _, p := range rows[0].P {
		header = append(header, fmt.Sprintf("p=%d", p))
	}
	t := stats.NewTable(header...)
	for _, r := range rows {
		comp := []interface{}{r.Dataset, "compute %"}
		comm := []interface{}{"", "comm %"}
		for i := range r.P {
			comp = append(comp, fmt.Sprintf("%.1f", r.CompPct[i]))
			comm = append(comm, fmt.Sprintf("%.1f", r.CommPct[i]))
		}
		t.AddRow(comp...)
		t.AddRow(comm...)
	}
	fmt.Fprintln(w, "Fig. 8: computation vs communication time")
	fmt.Fprint(w, t.String())
}

func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000)
	default:
		return d.String()
	}
}

func jemParams(o jem.Options) sketch.Params {
	return sketch.Params{K: o.K, W: o.W, T: o.Trials, L: o.SegmentLen, Seed: o.Seed}
}
