package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"repro"
	"repro/internal/core"
	"repro/internal/minimizer"
	"repro/internal/seq"
	"repro/internal/stats"
	"repro/internal/truth"
)

// OrderingAblation compares the paper's lexicographic minimizer
// ordering against hash ordering (the minimap2-style alternative
// discussed in the winnowing literature the paper cites).
type OrderingAblation struct {
	Dataset string
	Lex     jem.Quality
	Hash    jem.Quality
	// LexMinimizers and HashMinimizers count subject sketch-table
	// entries under each ordering (density differences show up here).
	LexEntries, HashEntries int
}

// AblationOrdering runs the JEM mapper under both orderings on one
// dataset and scores both against the same benchmark.
func AblationOrdering(spec Spec, scale float64, opts jem.Options) (*OrderingAblation, error) {
	d, err := Build(spec, scale)
	if err != nil {
		return nil, err
	}
	b, err := truth.Build(d.Chromosomes, d.Contigs, d.Dataset.Truth, opts.SegmentLen, opts.K, truth.BuildOptions{})
	if err != nil {
		return nil, err
	}
	run := func(order minimizer.Ordering) (jem.Quality, int, error) {
		p := jemParams(opts)
		p.Order = order
		m, err := core.NewMapper(p)
		if err != nil {
			return jem.Quality{}, 0, err
		}
		m.AddSubjectsParallel(d.Contigs, opts.Workers)
		results := m.MapReads(d.Reads, opts.SegmentLen, opts.Workers)
		c := b.Evaluate(results)
		return jem.Quality{
			TP: c.TP, FP: c.FP, FN: c.FN, TN: c.TN,
			Precision: c.Precision(), Recall: c.Recall(), F1: c.F1(),
		}, m.Table().Entries(), nil
	}
	out := &OrderingAblation{Dataset: spec.Name}
	if out.Lex, out.LexEntries, err = run(minimizer.OrderLex); err != nil {
		return nil, err
	}
	if out.Hash, out.HashEntries, err = run(minimizer.OrderHash); err != nil {
		return nil, err
	}
	return out, nil
}

// RenderAblationOrdering writes the comparison.
func RenderAblationOrdering(w io.Writer, a *OrderingAblation) {
	t := stats.NewTable("ordering", "precision", "recall", "table entries")
	t.AddRow("lexicographic (paper)", fmt.Sprintf("%.4f", a.Lex.Precision), fmt.Sprintf("%.4f", a.Lex.Recall), a.LexEntries)
	t.AddRow("hash (minimap2-style)", fmt.Sprintf("%.4f", a.Hash.Precision), fmt.Sprintf("%.4f", a.Hash.Recall), a.HashEntries)
	fmt.Fprintf(w, "Ablation: minimizer ordering (%s)\n", a.Dataset)
	fmt.Fprint(w, t.String())
}

// SegmentsAblation quantifies the end-segment design (§III-B.1): a
// read is scored correct when the reported contig is in its segment's
// truth set (end-segment rows) or in the union of both ends' truth
// sets (whole-read rows).
type SegmentsAblation struct {
	Dataset string
	// SegmentAccuracy is the fraction of end segments whose best hit
	// is true.
	SegmentAccuracy float64
	// WholeReadAccuracy is the fraction of reads whose whole-read
	// sketch best hit lands in either end's truth set.
	WholeReadAccuracy float64
	// SegmentQueryBases / WholeQueryBases compare sketching work.
	SegmentQueryBases, WholeQueryBases int64
}

// AblationEndSegments maps queries both ways on one dataset.
func AblationEndSegments(spec Spec, scale float64, opts jem.Options) (*SegmentsAblation, error) {
	d, err := Build(spec, scale)
	if err != nil {
		return nil, err
	}
	b, err := truth.Build(d.Chromosomes, d.Contigs, d.Dataset.Truth, opts.SegmentLen, opts.K, truth.BuildOptions{})
	if err != nil {
		return nil, err
	}
	p := jemParams(opts)
	m, err := core.NewMapper(p)
	if err != nil {
		return nil, err
	}
	m.AddSubjectsParallel(d.Contigs, opts.Workers)

	out := &SegmentsAblation{Dataset: spec.Name}

	// End-segment accuracy.
	results := m.MapReads(d.Reads, opts.SegmentLen, opts.Workers)
	var segTotal, segGood int
	for _, r := range results {
		trueSet := b.True(r.ReadIndex, r.Kind)
		if len(trueSet) == 0 {
			continue
		}
		segTotal++
		if r.Mapped() && containsID(trueSet, r.Subject) {
			segGood++
		}
	}
	if segTotal > 0 {
		out.SegmentAccuracy = float64(segGood) / float64(segTotal)
	}
	for i := range d.Reads {
		n := len(d.Reads[i].Seq)
		out.WholeQueryBases += int64(n)
		if n > 2*opts.SegmentLen {
			n = 2 * opts.SegmentLen
		}
		out.SegmentQueryBases += int64(n)
	}

	// Whole-read accuracy: sketch the entire read as one query.
	sess := m.NewSession()
	var wTotal, wGood int
	for i := range d.Reads {
		truthUnion := append(append([]int32(nil),
			b.True(int32(i), core.Prefix)...),
			b.True(int32(i), core.Suffix)...)
		if len(truthUnion) == 0 {
			continue
		}
		wTotal++
		if hit, ok := sess.MapSegment(d.Reads[i].Seq); ok && containsID(truthUnion, hit.Subject) {
			wGood++
		}
	}
	if wTotal > 0 {
		out.WholeReadAccuracy = float64(wGood) / float64(wTotal)
	}
	return out, nil
}

func containsID(list []int32, v int32) bool {
	for _, x := range list {
		if x == v {
			return true
		}
	}
	return false
}

// RenderAblationSegments writes the comparison.
func RenderAblationSegments(w io.Writer, a *SegmentsAblation) {
	t := stats.NewTable("query form", "accuracy", "query bases sketched")
	t.AddRow("end segments (paper)", fmt.Sprintf("%.4f", a.SegmentAccuracy), a.SegmentQueryBases)
	t.AddRow("whole read", fmt.Sprintf("%.4f", a.WholeReadAccuracy), a.WholeQueryBases)
	fmt.Fprintf(w, "Ablation: end segments vs whole-read queries (%s)\n", a.Dataset)
	fmt.Fprint(w, t.String())
}

// LazyCounterAblation measures the §III-C lazy-update counter against
// a plain map-based counter, in query-mapping wall time.
type LazyCounterAblation struct {
	Dataset           string
	LazySeconds       float64
	MapCounterSeconds float64
}

// AblationLazyCounters maps all queries with both counting schemes.
func AblationLazyCounters(spec Spec, scale float64, opts jem.Options) (*LazyCounterAblation, error) {
	d, err := Build(spec, scale)
	if err != nil {
		return nil, err
	}
	p := jemParams(opts)
	m, err := core.NewMapper(p)
	if err != nil {
		return nil, err
	}
	m.AddSubjectsParallel(d.Contigs, opts.Workers)
	out := &LazyCounterAblation{Dataset: spec.Name}

	_, lazyDur := m.MapReadsTimed(d.Reads, opts.SegmentLen, 1)
	out.LazySeconds = lazyDur.Seconds()
	out.MapCounterSeconds = mapCounterBaseline(m, d.Reads, opts.SegmentLen)
	return out, nil
}

// WindowPoint is one w value of the window-size ablation.
type WindowPoint struct {
	W       int
	Quality jem.Quality
	// TableEntries measures the sketch table size (space / gather
	// payload driver); QuerySeconds the single-threaded mapping time.
	TableEntries int
	QuerySeconds float64
}

// AblationWindow sweeps the minimizer window size w, the knob trading
// sketch density (space, gather payload) against sensitivity.
func AblationWindow(spec Spec, scale float64, ws []int, opts jem.Options) ([]WindowPoint, error) {
	d, err := Build(spec, scale)
	if err != nil {
		return nil, err
	}
	b, err := truth.Build(d.Chromosomes, d.Contigs, d.Dataset.Truth, opts.SegmentLen, opts.K, truth.BuildOptions{})
	if err != nil {
		return nil, err
	}
	points := make([]WindowPoint, 0, len(ws))
	for _, w := range ws {
		p := jemParams(opts)
		p.W = w
		m, err := core.NewMapper(p)
		if err != nil {
			return nil, err
		}
		m.AddSubjectsParallel(d.Contigs, opts.Workers)
		results, dur := m.MapReadsTimed(d.Reads, opts.SegmentLen, 1)
		c := b.Evaluate(results)
		points = append(points, WindowPoint{
			W: w,
			Quality: jem.Quality{
				TP: c.TP, FP: c.FP, FN: c.FN, TN: c.TN,
				Precision: c.Precision(), Recall: c.Recall(), F1: c.F1(),
			},
			TableEntries: m.Table().Entries(),
			QuerySeconds: dur.Seconds(),
		})
	}
	return points, nil
}

// RenderAblationWindow writes the sweep.
func RenderAblationWindow(w io.Writer, dataset string, points []WindowPoint) {
	t := stats.NewTable("w", "precision", "recall", "table entries", "query time (s)")
	for _, p := range points {
		t.AddRow(p.W, fmt.Sprintf("%.4f", p.Quality.Precision), fmt.Sprintf("%.4f", p.Quality.Recall),
			p.TableEntries, fmt.Sprintf("%.3f", p.QuerySeconds))
	}
	fmt.Fprintf(w, "Ablation: minimizer window size (%s)\n", dataset)
	fmt.Fprint(w, t.String())
}

// BubbleAblation contrasts the full hybrid pipeline on a diploid
// genome with and without SNP-bubble popping in the assembler: the
// popped assembly has far fewer, longer contigs, which changes both
// subject statistics and mapping outcomes.
type BubbleAblation struct {
	Heterozygosity float64
	// Popped / Unpopped each describe one pipeline variant.
	Popped, Unpopped BubbleVariant
}

// BubbleVariant is one arm of the bubble ablation.
type BubbleVariant struct {
	Contigs       int
	ContigN50     int
	BubblesPopped int
	Quality       jem.Quality
}

// AblationBubbles synthesizes a diploid dataset twice (identical
// seeds, popping toggled) and maps + evaluates both.
//
//jem:detached offline experiment harness: no request scope to inherit
func AblationBubbles(genomeLen int, het float64, opts jem.Options) (*BubbleAblation, error) {
	run := func(disable bool) (BubbleVariant, error) {
		ds, err := jem.Synthesize(jem.SynthesisConfig{
			Name:                 "bubbles",
			GenomeLength:         genomeLen,
			Heterozygosity:       het,
			HiFiCoverage:         10,
			Seed:                 909,
			DisableBubblePopping: disable,
		})
		if err != nil {
			return BubbleVariant{}, err
		}
		mapper, err := jem.NewMapper(ds.Contigs, opts)
		if err != nil {
			return BubbleVariant{}, err
		}
		bench, err := jem.BuildBenchmark(ds, opts)
		if err != nil {
			return BubbleVariant{}, err
		}
		mappings, err := mapper.Map(context.Background(), ds.Reads, jem.MapOptions{})
		if err != nil {
			return BubbleVariant{}, err
		}
		return BubbleVariant{
			Contigs:       len(ds.Contigs),
			ContigN50:     ds.AssemblyStats.N50,
			BubblesPopped: ds.AssemblyStats.BubblesPopped,
			Quality:       bench.Evaluate(mappings),
		}, nil
	}
	out := &BubbleAblation{Heterozygosity: het}
	var err error
	if out.Popped, err = run(false); err != nil {
		return nil, err
	}
	if out.Unpopped, err = run(true); err != nil {
		return nil, err
	}
	return out, nil
}

// RenderAblationBubbles writes the comparison.
func RenderAblationBubbles(w io.Writer, a *BubbleAblation) {
	t := stats.NewTable("assembler", "contigs", "contig N50", "bubbles popped", "precision", "recall")
	t.AddRow("bubble popping on", a.Popped.Contigs, a.Popped.ContigN50, a.Popped.BubblesPopped,
		fmt.Sprintf("%.4f", a.Popped.Quality.Precision), fmt.Sprintf("%.4f", a.Popped.Quality.Recall))
	t.AddRow("bubble popping off", a.Unpopped.Contigs, a.Unpopped.ContigN50, a.Unpopped.BubblesPopped,
		fmt.Sprintf("%.4f", a.Unpopped.Quality.Precision), fmt.Sprintf("%.4f", a.Unpopped.Quality.Recall))
	fmt.Fprintf(w, "Ablation: SNP bubble popping on a diploid genome (het=%.3f)\n", a.Heterozygosity)
	fmt.Fprint(w, t.String())
}

// mapCounterBaseline maps every end segment using a plain
// map[subject]count per query instead of the lazy counter array,
// returning the elapsed seconds. The mapping decisions are identical;
// only the bookkeeping differs.
func mapCounterBaseline(m *core.Mapper, reads []seq.Record, l int) float64 {
	start := time.Now()
	sk := m.Sketcher()
	tb := m.Table()
	for i := range reads {
		segs, _ := core.EndSegments(reads[i].Seq, l)
		for _, seg := range segs {
			words := sk.QuerySketch(seg)
			if words == nil {
				continue
			}
			counts := make(map[int32]int32)
			for t, w := range words {
				for _, p := range tb.Lookup(t, w) {
					counts[p.Subject]++
				}
			}
			best := core.Hit{Subject: -1}
			for subj, c := range counts {
				if c > best.Count || (c == best.Count && subj < best.Subject) {
					best = core.Hit{Subject: subj, Count: c}
				}
			}
			_ = best
		}
	}
	return time.Since(start).Seconds()
}

// RenderAblationLazy writes the comparison.
func RenderAblationLazy(w io.Writer, a *LazyCounterAblation) {
	t := stats.NewTable("counting scheme", "query time (s)")
	t.AddRow("lazy counters (paper)", fmt.Sprintf("%.3f", a.LazySeconds))
	t.AddRow("map counters", fmt.Sprintf("%.3f", a.MapCounterSeconds))
	fmt.Fprintf(w, "Ablation: lazy-update counters vs map counting (%s)\n", a.Dataset)
	fmt.Fprint(w, t.String())
}
