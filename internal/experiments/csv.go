package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// CSV writers emit the raw series behind each exhibit so figures can
// be re-plotted with any tool. Every writer emits a header row and
// one record per data point.

func writeCSV(w io.Writer, header []string, rows [][]string) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range rows {
		if err := cw.Write(r); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func f(x float64) string { return strconv.FormatFloat(x, 'f', 6, 64) }
func d(x int) string     { return strconv.Itoa(x) }

// Table1CSV writes the dataset statistics.
func Table1CSV(w io.Writer, rows []Table1Row) error {
	var recs [][]string
	for _, r := range rows {
		recs = append(recs, []string{
			r.Dataset, d(r.GenomeLen), d(r.NumContigs), strconv.FormatInt(r.SubjectBases, 10),
			f(r.ContigMean), f(r.ContigStdDev), d(r.NumReads),
			strconv.FormatInt(r.QueryBases, 10), f(r.ReadMean), f(r.ReadStdDev),
		})
	}
	return writeCSV(w, []string{
		"dataset", "genome_len", "num_contigs", "subject_bases",
		"contig_mean", "contig_sd", "num_reads", "query_bases", "read_mean", "read_sd",
	}, recs)
}

// Fig5CSV writes the quality comparison.
func Fig5CSV(w io.Writer, rows []QualityRow) error {
	var recs [][]string
	for _, r := range rows {
		recs = append(recs, []string{
			r.Dataset,
			f(r.JEM.Precision), f(r.JEM.Recall),
			f(r.Mashmap.Precision), f(r.Mashmap.Recall),
			f(r.SeedChain.Precision), f(r.SeedChain.Recall),
		})
	}
	return writeCSV(w, []string{
		"dataset", "jem_precision", "jem_recall", "mashmap_precision", "mashmap_recall",
		"seedchain_precision", "seedchain_recall",
	}, recs)
}

// Fig6CSV writes the trial sweep.
func Fig6CSV(w io.Writer, dataset string, points []TrialsPoint) error {
	var recs [][]string
	for _, p := range points {
		recs = append(recs, []string{
			dataset, d(p.Trials),
			f(p.JEM.Precision), f(p.JEM.Recall),
			f(p.ClassicalMinHash.Precision), f(p.ClassicalMinHash.Recall),
		})
	}
	return writeCSV(w, []string{
		"dataset", "trials", "jem_precision", "jem_recall", "minhash_precision", "minhash_recall",
	}, recs)
}

// Table2CSV writes the scaling study (one row per dataset × p, plus a
// mashmap row per dataset with p = 0).
func Table2CSV(w io.Writer, rows []ScalingRow) error {
	var recs [][]string
	for _, r := range rows {
		for i, p := range r.P {
			recs = append(recs, []string{
				r.Dataset, d(p), f(r.JEMRuntime[i].Seconds()), "jem",
			})
		}
		recs = append(recs, []string{
			r.Dataset, "0", f(r.MashmapRuntime.Seconds()), "mashmap-allthreads",
		})
	}
	return writeCSV(w, []string{"dataset", "p", "runtime_s", "series"}, recs)
}

// Fig7bCSV writes the throughput series.
func Fig7bCSV(w io.Writer, rows []ThroughputRow) error {
	var recs [][]string
	for _, r := range rows {
		for i, p := range r.P {
			recs = append(recs, []string{r.Dataset, d(p), f(r.Throughput[i])})
		}
	}
	return writeCSV(w, []string{"dataset", "p", "segments_per_s"}, recs)
}

// Fig8CSV writes the computation/communication split.
func Fig8CSV(w io.Writer, rows []CommRow) error {
	var recs [][]string
	for _, r := range rows {
		for i, p := range r.P {
			recs = append(recs, []string{r.Dataset, d(p), f(r.CompPct[i]), f(r.CommPct[i])})
		}
	}
	return writeCSV(w, []string{"dataset", "p", "compute_pct", "comm_pct"}, recs)
}

// Fig9CSV writes the identity histogram bins.
func Fig9CSV(w io.Writer, r *IdentityResult) error {
	var recs [][]string
	for i := range r.Histogram.Counts {
		recs = append(recs, []string{
			r.Dataset, r.Histogram.BinLabel(i),
			strconv.FormatInt(r.Histogram.Counts[i], 10),
			f(r.Histogram.Fraction(i)),
		})
	}
	return writeCSV(w, []string{"dataset", "identity_bin", "count", "fraction"}, recs)
}

// Fig7aCSV writes the per-step breakdown.
func Fig7aCSV(w io.Writer, rows []BreakdownRow) error {
	var recs [][]string
	for _, r := range rows {
		for _, st := range r.Steps {
			recs = append(recs, []string{
				r.Dataset, fmt.Sprintf("p=%d", r.P), st.Name, f(st.Duration.Seconds()),
			})
		}
	}
	return writeCSV(w, []string{"dataset", "p", "step", "seconds"}, recs)
}
