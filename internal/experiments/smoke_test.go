package experiments

import (
	"os"
	"testing"

	"repro"
)

// tinyScale keeps unit-test datasets at the 50 kbp floor.
const tinyScale = 0.0001

func testOptions() jem.Options {
	o := jem.DefaultOptions()
	return o
}

func TestFig5Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("dataset synthesis is slow")
	}
	specs := SimSpecs()[:2]
	rows, err := Fig5(specs, tinyScale, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.JEM.Precision < 0.8 {
			t.Errorf("%s: JEM precision %.3f too low", r.Dataset, r.JEM.Precision)
		}
		if r.Mashmap.Precision < 0.8 {
			t.Errorf("%s: Mashmap precision %.3f too low", r.Dataset, r.Mashmap.Precision)
		}
	}
	RenderFig5(os.Stderr, rows)
}

func TestAblationsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("dataset synthesis is slow")
	}
	spec := SimSpecs()[0]
	ord, err := AblationOrdering(spec, tinyScale, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if ord.Lex.Precision < 0.8 || ord.Hash.Precision < 0.8 {
		t.Errorf("ordering ablation precision too low: %+v", ord)
	}
	segs, err := AblationEndSegments(spec, tinyScale, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if segs.SegmentAccuracy < 0.8 {
		t.Errorf("segment accuracy %.3f", segs.SegmentAccuracy)
	}
	if segs.SegmentQueryBases >= segs.WholeQueryBases {
		t.Errorf("end segments should sketch fewer bases: %d vs %d",
			segs.SegmentQueryBases, segs.WholeQueryBases)
	}
	lazy, err := AblationLazyCounters(spec, tinyScale, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if lazy.LazySeconds <= 0 || lazy.MapCounterSeconds <= 0 {
		t.Errorf("ablation timings: %+v", lazy)
	}
	win, err := AblationWindow(spec, tinyScale, []int{20, 100}, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(win) != 2 {
		t.Fatalf("window points: %+v", win)
	}
	// Smaller w keeps more minimizers → denser table.
	if win[0].TableEntries <= win[1].TableEntries {
		t.Errorf("w=20 entries %d should exceed w=100 entries %d",
			win[0].TableEntries, win[1].TableEntries)
	}
	bub, err := AblationBubbles(100_000, 0.004, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if bub.Popped.BubblesPopped == 0 || bub.Unpopped.BubblesPopped != 0 {
		t.Errorf("bubble ablation arms wrong: %+v", bub)
	}
	if bub.Popped.ContigN50 <= bub.Unpopped.ContigN50 {
		t.Errorf("popping should raise contig N50: %d vs %d",
			bub.Popped.ContigN50, bub.Unpopped.ContigN50)
	}
	RenderAblationOrdering(os.Stderr, ord)
	RenderAblationSegments(os.Stderr, segs)
	RenderAblationLazy(os.Stderr, lazy)
	RenderAblationWindow(os.Stderr, spec.Name, win)
	RenderAblationBubbles(os.Stderr, bub)
}

func TestScalingSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("dataset synthesis is slow")
	}
	spec := SimSpecs()[0]
	rows, err := Table2([]Spec{spec}, tinyScale, []int{2, 4}, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	RenderTable2(os.Stderr, rows)
	if len(rows[0].JEMRuntime) != 2 {
		t.Fatalf("expected 2 runtimes, got %d", len(rows[0].JEMRuntime))
	}
}
