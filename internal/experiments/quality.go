package experiments

import (
	"context"
	"fmt"
	"io"

	"repro"
	"repro/internal/stats"
)

// QualityRow is one dataset's precision/recall for the mappers of
// Fig. 5: JEM, the Mashmap-style baseline, and (as an extension) the
// Minimap2-style seed-and-chain baseline the paper could not compare
// head-to-head.
type QualityRow struct {
	Dataset   string
	JEM       jem.Quality
	Mashmap   jem.Quality
	SeedChain jem.Quality
}

// Fig5 reproduces the qualitative comparison of Fig. 5 with the
// paper's default parameters, plus the seed-and-chain third column.
//
//jem:detached offline experiment harness: no request scope to inherit
func Fig5(specs []Spec, scale float64, opts jem.Options) ([]QualityRow, error) {
	rows := make([]QualityRow, 0, len(specs))
	for _, spec := range specs {
		d, err := Build(spec, scale)
		if err != nil {
			return nil, err
		}
		bench, err := jem.BuildBenchmark(d.Dataset, opts)
		if err != nil {
			return nil, err
		}
		mapper, err := jem.NewMapper(d.Contigs, opts)
		if err != nil {
			return nil, err
		}
		jemMappings, err := mapper.Map(context.Background(), d.Reads, jem.MapOptions{})
		if err != nil {
			return nil, err
		}
		jq := bench.Evaluate(jemMappings)

		baseline := jem.NewMashmapMapper(d.Contigs, opts)
		mq := bench.Evaluate(baseline.MapReads(d.Reads))

		chain := jem.NewSeedChainMapper(d.Contigs, opts)
		cq := bench.Evaluate(chain.MapReads(d.Reads))

		rows = append(rows, QualityRow{Dataset: spec.Name, JEM: jq, Mashmap: mq, SeedChain: cq})
	}
	return rows, nil
}

// RenderFig5 writes precision and recall panels like the paper's
// figure.
func RenderFig5(w io.Writer, rows []QualityRow) {
	t := stats.NewTable("Input", "JEM prec", "Mashmap prec", "SeedChain prec",
		"JEM recall", "Mashmap recall", "SeedChain recall")
	for _, r := range rows {
		t.AddRow(r.Dataset,
			fmt.Sprintf("%.4f", r.JEM.Precision), fmt.Sprintf("%.4f", r.Mashmap.Precision),
			fmt.Sprintf("%.4f", r.SeedChain.Precision),
			fmt.Sprintf("%.4f", r.JEM.Recall), fmt.Sprintf("%.4f", r.Mashmap.Recall),
			fmt.Sprintf("%.4f", r.SeedChain.Recall))
	}
	fmt.Fprintln(w, "Fig. 5: mapping quality, JEM-mapper vs Mashmap vs seed-and-chain")
	fmt.Fprint(w, t.String())
}

// TrialsPoint is one T value of Fig. 6 for both sketch schemes.
type TrialsPoint struct {
	Trials           int
	JEM              jem.Quality
	ClassicalMinHash jem.Quality
}

// Fig6 reproduces the trial sweep of Fig. 6 on one dataset
// (B. splendens in the paper): precision/recall of JEM vs classical
// MinHash as T varies.
//
//jem:detached offline experiment harness: no request scope to inherit
func Fig6(spec Spec, scale float64, trials []int, base jem.Options) ([]TrialsPoint, error) {
	d, err := Build(spec, scale)
	if err != nil {
		return nil, err
	}
	bench, err := jem.BuildBenchmark(d.Dataset, base)
	if err != nil {
		return nil, err
	}
	points := make([]TrialsPoint, 0, len(trials))
	for _, T := range trials {
		opts := base
		opts.Trials = T
		mapper, err := jem.NewMapper(d.Contigs, opts)
		if err != nil {
			return nil, err
		}
		jemMappings, err := mapper.Map(context.Background(), d.Reads, jem.MapOptions{})
		if err != nil {
			return nil, err
		}
		jq := bench.Evaluate(jemMappings)

		mh, err := jem.NewMinHashMapper(d.Contigs, opts)
		if err != nil {
			return nil, err
		}
		cq := bench.Evaluate(mh.MapReads(d.Reads))
		points = append(points, TrialsPoint{Trials: T, JEM: jq, ClassicalMinHash: cq})
	}
	return points, nil
}

// RenderFig6 writes the sweep as a table of series.
func RenderFig6(w io.Writer, dataset string, points []TrialsPoint) {
	t := stats.NewTable("T", "JEM precision", "JEM recall", "MinHash precision", "MinHash recall")
	for _, p := range points {
		t.AddRow(p.Trials,
			fmt.Sprintf("%.4f", p.JEM.Precision), fmt.Sprintf("%.4f", p.JEM.Recall),
			fmt.Sprintf("%.4f", p.ClassicalMinHash.Precision), fmt.Sprintf("%.4f", p.ClassicalMinHash.Recall))
	}
	fmt.Fprintf(w, "Fig. 6: effect of number of trials on quality (%s)\n", dataset)
	fmt.Fprint(w, t.String())
}
