package experiments

import (
	"context"
	"fmt"
	"io"

	"repro"
	"repro/internal/core"
	"repro/internal/simulate"
	"repro/internal/stats"
	"repro/internal/truth"
)

// CoveragePoint is one long-read depth of the coverage sweep.
type CoveragePoint struct {
	Coverage float64
	// Quality of the mapping at this depth.
	Quality jem.Quality
	// Links is the number of cross-contig links with ≥2 supporting
	// reads — the scaffolding signal the paper's motivation is about.
	Links int
	// ScaffoldN50 is the N50 of scaffold spans (contig bases chained,
	// gaps excluded); ContigN50 is the baseline.
	ScaffoldN50 int
	ContigN50   int
}

// CoverageSweep re-simulates the long-read run of one dataset at
// several depths and measures mapping quality and scaffolding yield —
// quantifying the paper's motivating claim that hybrid scaffolding
// works at low long-read coverage ("decreased coverage (and cost) in
// long read sequencing", §I).
//
//jem:detached offline experiment harness: no request scope to inherit
func CoverageSweep(spec Spec, scale float64, coverages []float64, opts jem.Options) ([]CoveragePoint, error) {
	d, err := Build(spec, scale)
	if err != nil {
		return nil, err
	}
	contigN50 := n50(d.Contigs)
	mapper, err := jem.NewMapper(d.Contigs, opts)
	if err != nil {
		return nil, err
	}
	points := make([]CoveragePoint, 0, len(coverages))
	for ci, cov := range coverages {
		long, err := simulate.HiFi(d.Chromosomes, simulate.HiFiConfig{
			Coverage:  cov,
			MedianLen: spec.HiFiMedianLen,
			Seed:      spec.Seed + 1000 + int64(ci),
		})
		if err != nil {
			return nil, err
		}
		reads := simulate.Records(long)
		b, err := truth.Build(d.Chromosomes, d.Contigs, long, opts.SegmentLen, opts.K, truth.BuildOptions{})
		if err != nil {
			return nil, err
		}
		mappings, err := mapper.Map(context.Background(), reads, jem.MapOptions{})
		if err != nil {
			return nil, err
		}
		q := evalQuality(b, mappings)

		scaffolds := jem.BuildScaffolds(mappings, len(d.Contigs), 2)
		links := 0
		spans := make([]int, 0, len(scaffolds)+len(d.Contigs))
		inChain := map[int]bool{}
		for _, sc := range scaffolds {
			links += len(sc.Contigs) - 1
			span := 0
			for _, c := range sc.Contigs {
				span += len(d.Contigs[c].Seq)
				inChain[c] = true
			}
			spans = append(spans, span)
		}
		for i := range d.Contigs {
			if !inChain[i] {
				spans = append(spans, len(d.Contigs[i].Seq))
			}
		}
		points = append(points, CoveragePoint{
			Coverage:    cov,
			Quality:     q,
			Links:       links,
			ScaffoldN50: n50FromLens(spans),
			ContigN50:   contigN50,
		})
	}
	return points, nil
}

func evalQuality(b *truth.Benchmark, mappings []jem.Mapping) jem.Quality {
	var c truth.Confusion
	for _, m := range mappings {
		kind := core.Prefix
		if m.End == jem.SuffixEnd {
			kind = core.Suffix
		}
		trueSet := b.True(int32(m.ReadIndex), kind)
		switch {
		case m.Mapped && containsID(trueSet, int32(m.Contig)):
			c.TP++
		case m.Mapped:
			c.FP++
			if len(trueSet) > 0 {
				c.FN++
			}
		case len(trueSet) > 0:
			c.FN++
		default:
			c.TN++
		}
	}
	return jem.Quality{
		TP: c.TP, FP: c.FP, FN: c.FN, TN: c.TN,
		Precision: c.Precision(), Recall: c.Recall(), F1: c.F1(),
	}
}

func n50(records []jem.Record) int {
	lens := make([]int, len(records))
	for i := range records {
		lens[i] = len(records[i].Seq)
	}
	return n50FromLens(lens)
}

func n50FromLens(lens []int) int {
	var total int64
	for _, l := range lens {
		total += int64(l)
	}
	// Insertion-free approach: sort descending.
	sorted := append([]int(nil), lens...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] > sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	var acc int64
	for _, l := range sorted {
		acc += int64(l)
		if acc*2 >= total {
			return l
		}
	}
	return 0
}

// RenderCoverage writes the sweep.
func RenderCoverage(w io.Writer, dataset string, points []CoveragePoint) {
	t := stats.NewTable("coverage", "precision", "recall", "links (support>=2)", "contig N50", "scaffold N50")
	for _, p := range points {
		t.AddRow(fmt.Sprintf("%gx", p.Coverage),
			fmt.Sprintf("%.4f", p.Quality.Precision), fmt.Sprintf("%.4f", p.Quality.Recall),
			p.Links, p.ContigN50, p.ScaffoldN50)
	}
	fmt.Fprintf(w, "Coverage sweep: scaffolding yield vs long-read depth (%s)\n", dataset)
	fmt.Fprint(w, t.String())
}

// CoverageCSV writes the raw sweep data.
func CoverageCSV(w io.Writer, dataset string, points []CoveragePoint) error {
	var recs [][]string
	for _, p := range points {
		recs = append(recs, []string{
			dataset, f(p.Coverage), f(p.Quality.Precision), f(p.Quality.Recall),
			d(p.Links), d(p.ContigN50), d(p.ScaffoldN50),
		})
	}
	return writeCSV(w, []string{
		"dataset", "coverage", "precision", "recall", "links", "contig_n50", "scaffold_n50",
	}, recs)
}
