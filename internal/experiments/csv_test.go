package experiments

import (
	"bytes"
	"encoding/csv"
	"testing"
	"time"

	"repro"
	"repro/internal/stats"
)

func parseCSV(t *testing.T, b []byte) [][]string {
	t.Helper()
	recs, err := csv.NewReader(bytes.NewReader(b)).ReadAll()
	if err != nil {
		t.Fatalf("csv parse: %v", err)
	}
	return recs
}

func TestCSVWriters(t *testing.T) {
	var buf bytes.Buffer

	t.Run("table1", func(t *testing.T) {
		buf.Reset()
		rows := []Table1Row{{Dataset: "x", GenomeLen: 100, NumContigs: 3, SubjectBases: 90,
			ContigMean: 30, NumReads: 5, QueryBases: 500, ReadMean: 100}}
		if err := Table1CSV(&buf, rows); err != nil {
			t.Fatal(err)
		}
		recs := parseCSV(t, buf.Bytes())
		if len(recs) != 2 || recs[1][0] != "x" || recs[1][2] != "3" {
			t.Errorf("recs = %v", recs)
		}
	})

	t.Run("fig5", func(t *testing.T) {
		buf.Reset()
		rows := []QualityRow{{Dataset: "y", JEM: jem.Quality{Precision: 0.9, Recall: 0.8}}}
		if err := Fig5CSV(&buf, rows); err != nil {
			t.Fatal(err)
		}
		recs := parseCSV(t, buf.Bytes())
		if len(recs) != 2 || recs[1][1] != "0.900000" {
			t.Errorf("recs = %v", recs)
		}
	})

	t.Run("fig6", func(t *testing.T) {
		buf.Reset()
		pts := []TrialsPoint{{Trials: 30, JEM: jem.Quality{Recall: 0.95}}}
		if err := Fig6CSV(&buf, "z", pts); err != nil {
			t.Fatal(err)
		}
		recs := parseCSV(t, buf.Bytes())
		if recs[1][1] != "30" || recs[1][3] != "0.950000" {
			t.Errorf("recs = %v", recs)
		}
	})

	t.Run("table2", func(t *testing.T) {
		buf.Reset()
		rows := []ScalingRow{{
			Dataset: "d", P: []int{4, 8},
			JEMRuntime:     []time.Duration{2 * time.Second, time.Second},
			MashmapRuntime: 4 * time.Second,
		}}
		if err := Table2CSV(&buf, rows); err != nil {
			t.Fatal(err)
		}
		recs := parseCSV(t, buf.Bytes())
		if len(recs) != 4 { // header + 2 p rows + mashmap row
			t.Fatalf("recs = %v", recs)
		}
		if recs[3][3] != "mashmap-allthreads" {
			t.Errorf("recs = %v", recs)
		}
	})

	t.Run("fig7a", func(t *testing.T) {
		buf.Reset()
		rows := []BreakdownRow{{Dataset: "d", P: 16, Steps: []jem.StepTime{{Name: "S4", Duration: time.Second}}}}
		if err := Fig7aCSV(&buf, rows); err != nil {
			t.Fatal(err)
		}
		recs := parseCSV(t, buf.Bytes())
		if recs[1][2] != "S4" || recs[1][3] != "1.000000" {
			t.Errorf("recs = %v", recs)
		}
	})

	t.Run("fig7b", func(t *testing.T) {
		buf.Reset()
		rows := []ThroughputRow{{Dataset: "d", P: []int{4}, Throughput: []float64{12345}}}
		if err := Fig7bCSV(&buf, rows); err != nil {
			t.Fatal(err)
		}
		recs := parseCSV(t, buf.Bytes())
		if recs[1][2] != "12345.000000" {
			t.Errorf("recs = %v", recs)
		}
	})

	t.Run("fig8", func(t *testing.T) {
		buf.Reset()
		rows := []CommRow{{Dataset: "d", P: []int{4}, CommPct: []float64{5}, CompPct: []float64{95}}}
		if err := Fig8CSV(&buf, rows); err != nil {
			t.Fatal(err)
		}
		recs := parseCSV(t, buf.Bytes())
		if recs[1][2] != "95.000000" || recs[1][3] != "5.000000" {
			t.Errorf("recs = %v", recs)
		}
	})

	t.Run("fig9", func(t *testing.T) {
		buf.Reset()
		h := stats.NewHistogram(80, 100, 4)
		h.Add(99.5)
		h.Add(99.9)
		res := &IdentityResult{Dataset: "d", Mapped: 2, Histogram: h}
		if err := Fig9CSV(&buf, res); err != nil {
			t.Fatal(err)
		}
		recs := parseCSV(t, buf.Bytes())
		if len(recs) != 5 || recs[4][2] != "2" {
			t.Errorf("recs = %v", recs)
		}
	})
}
