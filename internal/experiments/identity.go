package experiments

import (
	"context"
	"fmt"
	"io"

	"repro"
	"repro/internal/align"
	"repro/internal/core"
	"repro/internal/parallel"
	"repro/internal/stats"
)

// IdentityResult is Fig. 9: the percent-identity distribution of the
// mappings JEM-mapper produced on the real-data stand-in.
type IdentityResult struct {
	Dataset     string
	Mapped      int
	Histogram   *stats.Histogram // 1 %-wide bins over [80,100]
	Mean        float64
	Frac95to100 float64
}

// Fig9 maps the real-data stand-in and aligns every mapped segment to
// its reported contig (the paper used BLAST here), collecting the
// identity distribution. maxPairs bounds alignment work (0 = all).
//
//jem:detached offline experiment harness: no request scope to inherit
func Fig9(spec Spec, scale float64, opts jem.Options, maxPairs int) (*IdentityResult, error) {
	d, err := Build(spec, scale)
	if err != nil {
		return nil, err
	}
	mapper, err := jem.NewMapper(d.Contigs, opts)
	if err != nil {
		return nil, err
	}
	mappings, err := mapper.Map(context.Background(), d.Reads, jem.MapOptions{})
	if err != nil {
		return nil, err
	}

	type pair struct {
		segment []byte
		contig  int
	}
	var pairs []pair
	for _, m := range mappings {
		if !m.Mapped {
			continue
		}
		segs, kinds := core.EndSegments(d.Reads[m.ReadIndex].Seq, opts.SegmentLen)
		for i, kind := range kinds {
			if (kind == core.Prefix) == (m.End == jem.PrefixEnd) {
				pairs = append(pairs, pair{segment: segs[i], contig: m.Contig})
			}
		}
		if maxPairs > 0 && len(pairs) >= maxPairs {
			break
		}
	}
	identities := make([]float64, len(pairs))
	parallel.ForEach(len(pairs), opts.Workers, func(i int) {
		r := align.BestStrandIdentity(pairs[i].segment, d.Contigs[pairs[i].contig].Seq, align.DefaultScoring())
		identities[i] = r.PercentIdentity()
	})

	res := &IdentityResult{
		Dataset:   spec.Name,
		Mapped:    len(pairs),
		Histogram: stats.NewHistogram(80, 100, 20),
	}
	var sum float64
	hi := 0
	for _, id := range identities {
		res.Histogram.Add(id)
		sum += id
		if id >= 95 {
			hi++
		}
	}
	if len(identities) > 0 {
		res.Mean = sum / float64(len(identities))
		res.Frac95to100 = float64(hi) / float64(len(identities))
	}
	return res, nil
}

// RenderFig9 writes the identity histogram.
func RenderFig9(w io.Writer, r *IdentityResult) {
	fmt.Fprintf(w, "Fig. 9: percent identity distribution (%s, %d mapped segments)\n", r.Dataset, r.Mapped)
	fmt.Fprintf(w, "mean identity %.2f%%; fraction in [95,100]: %.1f%%\n", r.Mean, 100*r.Frac95to100)
	fmt.Fprint(w, r.Histogram.Render(40))
}
