package experiments

import (
	"fmt"
	"io"

	"repro/internal/stats"
)

// Table1Row reproduces one row of the paper's Table I: subject
// statistics of the Minia-style contigs and query statistics of the
// HiFi reads.
type Table1Row struct {
	Dataset      string
	GenomeLen    int
	NumContigs   int // contigs ≥ 500 bp, as in the paper
	SubjectBases int64
	ContigMean   float64
	ContigStdDev float64
	NumReads     int
	QueryBases   int64
	ReadMean     float64
	ReadStdDev   float64
}

// Table1 builds every dataset and collects its statistics.
func Table1(specs []Spec, scale float64) ([]Table1Row, error) {
	rows := make([]Table1Row, 0, len(specs))
	for _, spec := range specs {
		d, err := Build(spec, scale)
		if err != nil {
			return nil, err
		}
		row := Table1Row{Dataset: spec.Name, GenomeLen: spec.GenomeLen(scale)}
		var clen stats.Summary
		for i := range d.Contigs {
			n := len(d.Contigs[i].Seq)
			if n < 500 {
				continue
			}
			row.NumContigs++
			row.SubjectBases += int64(n)
			clen.Add(float64(n))
		}
		row.ContigMean, row.ContigStdDev = clen.Mean(), clen.StdDev()
		var rlen stats.Summary
		for i := range d.Reads {
			n := len(d.Reads[i].Seq)
			row.NumReads++
			row.QueryBases += int64(n)
			rlen.Add(float64(n))
		}
		row.ReadMean, row.ReadStdDev = rlen.Mean(), rlen.StdDev()
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderTable1 writes the rows in the paper's column layout.
func RenderTable1(w io.Writer, rows []Table1Row) {
	t := stats.NewTable("Input", "Genome len (bp)", "No. contigs (>=500bp)",
		"Subject bp", "Contig len (avg+/-sd)", "No. reads", "Query bp", "Read len (avg+/-sd)")
	for _, r := range rows {
		t.AddRow(r.Dataset, r.GenomeLen, r.NumContigs, r.SubjectBases,
			fmt.Sprintf("%.0f +/- %.0f", r.ContigMean, r.ContigStdDev),
			r.NumReads, r.QueryBases,
			fmt.Sprintf("%.0f +/- %.0f", r.ReadMean, r.ReadStdDev))
	}
	fmt.Fprintln(w, "Table I: input data sets")
	fmt.Fprint(w, t.String())
}
