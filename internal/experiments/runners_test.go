package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// TestAllRunnersTinyScale drives every exhibit runner end to end on
// tiny datasets and sanity-checks both the structured results and the
// text renderings.
func TestAllRunnersTinyScale(t *testing.T) {
	if testing.Short() {
		t.Skip("dataset synthesis is slow")
	}
	opts := testOptions()
	specs := SimSpecs()[:2]
	var out bytes.Buffer

	t.Run("table1", func(t *testing.T) {
		rows, err := Table1(specs, tinyScale)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rows {
			if r.NumReads == 0 || r.QueryBases == 0 {
				t.Errorf("row %+v has empty query side", r)
			}
			if r.GenomeLen < 50_000 {
				t.Errorf("genome floor violated: %+v", r)
			}
		}
		RenderTable1(&out, rows)
		if !strings.Contains(out.String(), "Table I") {
			t.Error("rendering missing title")
		}
	})

	t.Run("fig7a", func(t *testing.T) {
		rows, err := Fig7a(specs[:1], tinyScale, 4, opts)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 1 || len(rows[0].Steps) == 0 {
			t.Fatalf("rows = %+v", rows)
		}
		if rows[0].Total <= 0 {
			t.Error("zero total")
		}
		out.Reset()
		RenderFig7a(&out, rows)
		if !strings.Contains(out.String(), "S4 map queries") {
			t.Error("rendering missing steps")
		}
		RenderFig7a(&out, nil) // empty input is a no-op
	})

	t.Run("fig7b", func(t *testing.T) {
		rows, err := Fig7b(specs[:1], tinyScale, []int{2, 4}, opts)
		if err != nil {
			t.Fatal(err)
		}
		for _, th := range rows[0].Throughput {
			if th <= 0 {
				t.Errorf("non-positive throughput: %+v", rows[0])
			}
		}
		out.Reset()
		RenderFig7b(&out, rows)
		if !strings.Contains(out.String(), "q/s") {
			t.Error("rendering missing units")
		}
		RenderFig7b(&out, nil)
	})

	t.Run("fig8", func(t *testing.T) {
		rows, err := Fig8(specs[:1], tinyScale, []int{2, 4}, opts)
		if err != nil {
			t.Fatal(err)
		}
		for i := range rows[0].P {
			sum := rows[0].CommPct[i] + rows[0].CompPct[i]
			if sum < 99.9 || sum > 100.1 {
				t.Errorf("percentages do not sum to 100: %+v", rows[0])
			}
		}
		out.Reset()
		RenderFig8(&out, rows)
		if !strings.Contains(out.String(), "comm %") {
			t.Error("rendering missing rows")
		}
		RenderFig8(&out, nil)
	})

	t.Run("fig9", func(t *testing.T) {
		res, err := Fig9(specs[0], tinyScale, opts, 25)
		if err != nil {
			t.Fatal(err)
		}
		if res.Mapped == 0 {
			t.Fatal("no mapped segments")
		}
		if res.Mean < 80 {
			t.Errorf("mean identity %.2f suspicious", res.Mean)
		}
		out.Reset()
		RenderFig9(&out, res)
		if !strings.Contains(out.String(), "percent identity") {
			t.Error("rendering missing title")
		}
	})

	t.Run("fig6", func(t *testing.T) {
		pts, err := Fig6(specs[0], tinyScale, []int{5, 10}, opts)
		if err != nil {
			t.Fatal(err)
		}
		if len(pts) != 2 || pts[0].Trials != 5 {
			t.Fatalf("points = %+v", pts)
		}
		out.Reset()
		RenderFig6(&out, specs[0].Name, pts)
		if !strings.Contains(out.String(), "number of trials") {
			t.Error("rendering missing title")
		}
	})

	t.Run("table2-render", func(t *testing.T) {
		rows, err := Table2(specs[:1], tinyScale, []int{2, 4}, opts)
		if err != nil {
			t.Fatal(err)
		}
		out.Reset()
		RenderTable2(&out, rows)
		if !strings.Contains(out.String(), "strong scaling") {
			t.Error("rendering missing title")
		}
		RenderTable2(&out, nil)
		if rows[0].Speedup(1) <= 0 {
			t.Errorf("speedup: %+v", rows[0])
		}
	})
}

func TestCoverageSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("dataset synthesis is slow")
	}
	spec := SimSpecs()[2] // enough contigs for links to exist
	pts, err := CoverageSweep(spec, tinyScale, []float64{3, 12}, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %+v", pts)
	}
	// More coverage → at least as many links.
	if pts[1].Links < pts[0].Links {
		t.Errorf("links fell with coverage: %+v", pts)
	}
	for _, p := range pts {
		if p.Quality.Precision < 0.8 {
			t.Errorf("precision %.3f at %gx", p.Quality.Precision, p.Coverage)
		}
		if p.ScaffoldN50 < p.ContigN50 {
			t.Errorf("scaffold N50 %d below contig N50 %d at %gx", p.ScaffoldN50, p.ContigN50, p.Coverage)
		}
	}
	var buf bytes.Buffer
	RenderCoverage(&buf, spec.Name, pts)
	if !strings.Contains(buf.String(), "Coverage sweep") {
		t.Error("render missing title")
	}
	buf.Reset()
	if err := CoverageCSV(&buf, spec.Name, pts); err != nil {
		t.Fatal(err)
	}
	if recs := parseCSV(t, buf.Bytes()); len(recs) != 3 {
		t.Errorf("csv recs = %v", recs)
	}
}

func TestSpecLookup(t *testing.T) {
	if _, ok := SpecByName("bsplendens-like"); !ok {
		t.Error("known spec missing")
	}
	if _, ok := SpecByName("no-such-spec"); ok {
		t.Error("unknown spec found")
	}
	if len(PaperSpecs()) != 8 || len(SimSpecs()) != 6 {
		t.Error("spec counts changed")
	}
	s := PaperSpecs()[0]
	if s.GenomeLen(1e-9) != 50_000 {
		t.Errorf("genome floor = %d", s.GenomeLen(1e-9))
	}
}

func TestBuildCaches(t *testing.T) {
	if testing.Short() {
		t.Skip("dataset synthesis is slow")
	}
	spec := SimSpecs()[0]
	d1, err := Build(spec, tinyScale)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := Build(spec, tinyScale)
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Error("same spec+scale should hit the cache")
	}
	if len(d1.TruthReads()) != len(d1.Reads) {
		t.Error("truth reads out of sync")
	}
}
