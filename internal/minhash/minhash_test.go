package minhash

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/seq"
	"repro/internal/sketch"
)

func randDNA(rng *rand.Rand, n int) []byte {
	s := make([]byte, n)
	for i := range s {
		s[i] = seq.Code2Base[rng.Intn(4)]
	}
	return s
}

func smallParams() sketch.Params {
	return sketch.Params{K: 8, W: 4, T: 10, L: 200, Seed: 13}
}

func TestMapsShortContigs(t *testing.T) {
	// When contigs are about segment-sized, classical MinHash works:
	// the whole-sequence sketch and the overlap region coincide.
	rng := rand.New(rand.NewSource(61))
	ref := randDNA(rng, 10_000)
	var contigs []seq.Record
	for pos := 0; pos+250 <= len(ref); pos += 250 {
		contigs = append(contigs, seq.Record{ID: fmt.Sprintf("c%d", len(contigs)), Seq: ref[pos : pos+250]})
	}
	m, err := NewMapper(contigs, smallParams(), 1)
	if err != nil {
		t.Fatal(err)
	}
	sess := m.NewSession()
	correct := 0
	const trials = 25
	for i := 0; i < trials; i++ {
		pos := rng.Intn(len(ref) - 250)
		hit, ok := sess.MapSegment(ref[pos : pos+250])
		if !ok {
			continue
		}
		want := int32(pos / 250)
		if hit.Subject == want || hit.Subject == want+1 {
			correct++
		}
	}
	if correct < trials*7/10 {
		t.Errorf("only %d/%d segments mapped to origin", correct, trials)
	}
}

func TestDegradesOnLongContigs(t *testing.T) {
	// The paper's Fig. 6 argument: with contigs much longer than the
	// segment, whole-sequence minhashes usually fall outside the
	// overlap, so few trials hit. JEM's interval sketch must beat
	// classical MinHash on the same input at the same T.
	rng := rand.New(rand.NewSource(62))
	ref := randDNA(rng, 60_000)
	var contigs []seq.Record
	const contigLen = 10_000
	for pos := 0; pos+contigLen <= len(ref); pos += contigLen {
		contigs = append(contigs, seq.Record{ID: fmt.Sprintf("c%d", len(contigs)), Seq: ref[pos : pos+contigLen]})
	}
	p := sketch.Params{K: 12, W: 4, T: 5, L: 200, Seed: 14}

	mh, err := NewMapper(contigs, p, 1)
	if err != nil {
		t.Fatal(err)
	}
	jem, err := core.NewMapper(p)
	if err != nil {
		t.Fatal(err)
	}
	jem.AddSubjects(contigs)

	mhSess := mh.NewSession()
	jemSess := jem.NewSession()
	mhCorrect, jemCorrect := 0, 0
	const trials = 60
	for i := 0; i < trials; i++ {
		pos := rng.Intn(len(ref) - 200)
		want := int32(pos / contigLen)
		if h, ok := mhSess.MapSegment(ref[pos : pos+200]); ok && (h.Subject == want || h.Subject == want+1) {
			mhCorrect++
		}
		if h, ok := jemSess.MapSegment(ref[pos : pos+200]); ok && (h.Subject == want || h.Subject == want+1) {
			jemCorrect++
		}
	}
	if jemCorrect <= mhCorrect {
		t.Errorf("JEM (%d/%d) should beat classical MinHash (%d/%d) on long contigs at low T",
			jemCorrect, trials, mhCorrect, trials)
	}
	if jemCorrect < trials*8/10 {
		t.Errorf("JEM recovered only %d/%d", jemCorrect, trials)
	}
}

func TestSessionIsolation(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	ref := randDNA(rng, 5_000)
	contigs := []seq.Record{{ID: "c", Seq: ref}}
	m, err := NewMapper(contigs, smallParams(), 1)
	if err != nil {
		t.Fatal(err)
	}
	segA := ref[100:300]
	segB := ref[2000:2200]
	fresh := m.NewSession()
	wantB, wantOK := fresh.MapSegment(segB)
	reused := m.NewSession()
	reused.MapSegment(segA)
	gotB, gotOK := reused.MapSegment(segB)
	if gotOK != wantOK || gotB != wantB {
		t.Errorf("counter leak: %v,%v vs %v,%v", gotB, gotOK, wantB, wantOK)
	}
}

func TestMapReadsShape(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	ref := randDNA(rng, 10_000)
	contigs := []seq.Record{{ID: "c", Seq: ref[:5000]}, {ID: "d", Seq: ref[5000:]}}
	m, err := NewMapper(contigs, smallParams(), 1)
	if err != nil {
		t.Fatal(err)
	}
	var reads []seq.Record
	for i := 0; i < 10; i++ {
		pos := rng.Intn(len(ref) - 800)
		reads = append(reads, seq.Record{ID: fmt.Sprintf("r%d", i), Seq: ref[pos : pos+800]})
	}
	r1 := m.MapReads(reads, 200, 1)
	r2 := m.MapReads(reads, 200, 3)
	if !reflect.DeepEqual(r1, r2) {
		t.Error("worker count changed results")
	}
	if len(r1) != 2*len(reads) {
		t.Fatalf("got %d results", len(r1))
	}
}

func TestInvalidParams(t *testing.T) {
	if _, err := NewMapper(nil, sketch.Params{K: 0}, 1); err == nil {
		t.Error("invalid params should fail")
	}
}

func TestEmptyContigSet(t *testing.T) {
	m, err := NewMapper(nil, smallParams(), 1)
	if err != nil {
		t.Fatal(err)
	}
	sess := m.NewSession()
	rng := rand.New(rand.NewSource(65))
	if _, ok := sess.MapSegment(randDNA(rng, 200)); ok {
		t.Error("no contigs: should not map")
	}
}
