// Package minhash implements the classical MinHash mapper used as the
// second baseline in the paper's Fig. 6: each subject contributes T
// whole-sequence minhashes (one per random trial) to the sketch table,
// with no minimizer windowing and no ℓ-interval constraint. Queries
// are sketched the same way and scored by trial-hit frequency. The
// point of the comparison is that, without the interval constraint,
// sketches of long contigs routinely fall outside the region a ℓ-long
// end segment overlaps, so far more trials are needed for the same
// recall.
package minhash

import (
	"runtime"
	"sync"

	"repro/internal/core"
	"repro/internal/seq"
	"repro/internal/sketch"
)

// Mapper is the classical-MinHash mapper.
type Mapper struct {
	sk    *sketch.Sketcher
	table *sketch.Table
	nsubj int
}

// NewMapper sketches all contigs with T whole-sequence minhashes.
// Parameters K, T and Seed of p are honored; W and L are irrelevant to
// the classical scheme (all k-mers participate) but validated anyway
// so configurations stay interchangeable with the JEM mapper.
func NewMapper(contigs []seq.Record, p sketch.Params, workers int) (*Mapper, error) {
	sk, err := sketch.NewSketcher(p)
	if err != nil {
		return nil, err
	}
	m := &Mapper{sk: sk, table: sketch.NewTable(p.T), nsubj: len(contigs)}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	sketches := make([][]sketch.Word, len(contigs))
	var wg sync.WaitGroup
	idx := make(chan int, 4*workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				sketches[i] = sk.MinHashSketch(contigs[i].Seq)
			}
		}()
	}
	for i := range contigs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for i, words := range sketches {
		if words == nil {
			continue
		}
		m.table.InsertQueryWords(int32(i), words)
	}
	return m, nil
}

// Session holds per-goroutine lazy counters, mirroring core.Session.
type Session struct {
	m     *Mapper
	count []int32
	lastq []int32
	qid   int32
	cand  []int32
}

// NewSession creates a mapping session.
func (m *Mapper) NewSession() *Session {
	s := &Session{
		m:     m,
		count: make([]int32, m.nsubj),
		lastq: make([]int32, m.nsubj),
	}
	for i := range s.lastq {
		s.lastq[i] = -1
	}
	return s
}

// MapSegment maps one end segment by classical MinHash collision
// counting.
func (s *Session) MapSegment(segment []byte) (core.Hit, bool) {
	words := s.m.sk.MinHashSketch(segment)
	if words == nil {
		return core.Hit{Subject: -1}, false
	}
	s.qid++
	qid := s.qid
	s.cand = s.cand[:0]
	for t, w := range words {
		for _, p := range s.m.table.Lookup(t, w) {
			subj := p.Subject
			if s.lastq[subj] != qid {
				s.lastq[subj] = qid
				s.count[subj] = 0
				s.cand = append(s.cand, subj)
			}
			s.count[subj]++
		}
	}
	if len(s.cand) == 0 {
		return core.Hit{Subject: -1}, false
	}
	best := core.Hit{Subject: -1, Count: 0}
	for _, subj := range s.cand {
		c := s.count[subj]
		if c > best.Count || (c == best.Count && subj < best.Subject) {
			best = core.Hit{Subject: subj, Count: c}
		}
	}
	return best, true
}

// MapReads maps the end segments of all reads, producing results
// shaped like core.Mapper.MapReads for the shared evaluator.
func (m *Mapper) MapReads(reads []seq.Record, l int, workers int) []core.Result {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	out := make([][]core.Result, len(reads))
	var wg sync.WaitGroup
	idx := make(chan int, 4*workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sess := m.NewSession()
			for i := range idx {
				segs, kinds := core.EndSegments(reads[i].Seq, l)
				rs := make([]core.Result, len(segs))
				for si, seg := range segs {
					hit, ok := sess.MapSegment(seg)
					r := core.Result{ReadIndex: int32(i), Kind: kinds[si], Subject: -1}
					if ok {
						r.Subject = hit.Subject
						r.Count = hit.Count
					}
					rs[si] = r
				}
				out[i] = rs
			}
		}()
	}
	for i := range reads {
		idx <- i
	}
	close(idx)
	wg.Wait()
	flat := make([]core.Result, 0, 2*len(reads))
	for _, rs := range out {
		flat = append(flat, rs...)
	}
	return flat
}
