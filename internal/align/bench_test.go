package align

import (
	"math/rand"
	"testing"
)

func benchPair(b *testing.B, segLen, subLen int, mutation float64) (segment, subject []byte) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	subject = randDNA(rng, subLen)
	start := (subLen - segLen) / 2
	segment = append([]byte(nil), subject[start:start+segLen]...)
	for i := range segment {
		if rng.Float64() < mutation {
			segment[i] = "ACGT"[rng.Intn(4)]
		}
	}
	return segment, subject
}

func BenchmarkLocal1kx3k(b *testing.B) {
	segment, subject := benchPair(b, 1000, 3000, 0.01)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Local(segment, subject, DefaultScoring())
	}
}

func BenchmarkFit1k(b *testing.B) {
	segment, subject := benchPair(b, 1000, 3000, 0.01)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Fit(segment, subject, DefaultScoring(), 64)
	}
}

func BenchmarkFastIdentity(b *testing.B) {
	segment, subject := benchPair(b, 1000, 20_000, 0.01)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FastIdentity(segment, subject, DefaultScoring(), 64)
	}
}

func BenchmarkGlobalBanded(b *testing.B) {
	segment, _ := benchPair(b, 1000, 3000, 0.01)
	other := append([]byte(nil), segment...)
	other[500] = 'A'
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Global(segment, other, DefaultScoring(), 32)
	}
}
