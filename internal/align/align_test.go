package align

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/seq"
)

func randDNA(rng *rand.Rand, n int) []byte {
	s := make([]byte, n)
	for i := range s {
		s[i] = seq.Code2Base[rng.Intn(4)]
	}
	return s
}

func TestGlobalIdentical(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := 1 + int(nRaw)%200
		rng := rand.New(rand.NewSource(seed))
		s := randDNA(rng, n)
		r := Global(s, s, DefaultScoring(), 8)
		return r.Matches == n && r.Mismatches == 0 && r.Gaps == 0 &&
			r.Score == n && r.Identity() == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestGlobalKnownCases(t *testing.T) {
	sc := DefaultScoring()
	// Single substitution.
	r := Global([]byte("ACGTACGT"), []byte("ACGAACGT"), sc, 4)
	if r.Matches != 7 || r.Mismatches != 1 || r.Gaps != 0 {
		t.Errorf("substitution: %+v", r)
	}
	// Single deletion in b.
	r = Global([]byte("ACGTACGT"), []byte("ACGACGT"), sc, 4)
	if r.Matches != 7 || r.Gaps != 1 {
		t.Errorf("deletion: %+v", r)
	}
	// Single insertion in b.
	r = Global([]byte("ACGTACGT"), []byte("ACGTTACGT"), sc, 4)
	if r.Matches != 8 || r.Gaps != 1 {
		t.Errorf("insertion: %+v", r)
	}
}

func TestGlobalColumnsAccountForLengths(t *testing.T) {
	// Columns = matches+mismatches+gaps must cover both sequences:
	// 2*columns = len(a)+len(b)+gaps.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randDNA(rng, 10+rng.Intn(80))
		b := randDNA(rng, 10+rng.Intn(80))
		r := Global(a, b, DefaultScoring(), 16)
		cols := r.AlignedColumns()
		return 2*cols == len(a)+len(b)+r.Gaps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestGlobalEmptyInputs(t *testing.T) {
	sc := DefaultScoring()
	r := Global(nil, []byte("ACGT"), sc, 2)
	if r.Gaps != 4 || r.Matches != 0 {
		t.Errorf("empty a: %+v", r)
	}
	r = Global([]byte("ACGT"), nil, sc, 2)
	if r.Gaps != 4 {
		t.Errorf("empty b: %+v", r)
	}
	r = Global(nil, nil, sc, 2)
	if r.AlignedColumns() != 0 {
		t.Errorf("both empty: %+v", r)
	}
}

func TestLocalFindsEmbeddedMatch(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	needle := randDNA(rng, 50)
	hay := append(append(randDNA(rng, 200), needle...), randDNA(rng, 200)...)
	r := Local(needle, hay, DefaultScoring())
	if r.Matches < 48 {
		t.Errorf("local alignment missed the embedded copy: %+v", r)
	}
	if r.BStart < 150 || r.BEnd > 300 {
		t.Errorf("aligned span off target: %+v", r)
	}
	if r.Identity() < 0.95 {
		t.Errorf("identity %v", r.Identity())
	}
}

func TestLocalNoSimilarity(t *testing.T) {
	a := []byte("AAAAAAAAAA")
	b := []byte("GGGGGGGGGG")
	r := Local(a, b, DefaultScoring())
	if r.Score != 0 || r.Matches != 0 {
		t.Errorf("dissimilar local: %+v", r)
	}
	if r.Identity() != 0 {
		t.Errorf("identity %v", r.Identity())
	}
}

func TestLocalEmpty(t *testing.T) {
	r := Local(nil, []byte("ACGT"), DefaultScoring())
	if r.Score != 0 || r.AlignedColumns() != 0 {
		t.Errorf("empty local: %+v", r)
	}
}

func TestIdentityBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randDNA(rng, 20+rng.Intn(100))
		b := randDNA(rng, 20+rng.Intn(100))
		r := Local(a, b, DefaultScoring())
		id := r.Identity()
		return id >= 0 && id <= 1 && r.PercentIdentity() >= 0 && r.PercentIdentity() <= 100
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSegmentIdentityMutationTracksRate(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	base := randDNA(rng, 1000)
	mutated := append([]byte(nil), base...)
	for i := range mutated {
		if rng.Float64() < 0.05 {
			mutated[i] = seq.Code2Base[rng.Intn(4)]
		}
	}
	r := SegmentIdentity(mutated, base, DefaultScoring())
	id := r.PercentIdentity()
	if id < 90 || id > 99.5 {
		t.Errorf("5%% mutation should land ~93-97%% identity, got %.2f", id)
	}
}

func TestSegmentIdentityCropsLongSubject(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	segment := randDNA(rng, 300)
	subject := append(append(randDNA(rng, 5000), segment...), randDNA(rng, 5000)...)
	r := SegmentIdentity(segment, subject, DefaultScoring())
	if r.Identity() < 0.95 {
		t.Errorf("identity %.3f after cropping", r.Identity())
	}
	if r.BStart < 4500 || r.BEnd > 5900 {
		t.Errorf("span [%d,%d) not near the embedded copy", r.BStart, r.BEnd)
	}
}

func TestBestStrandIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	segment := randDNA(rng, 400)
	subject := append(append(randDNA(rng, 300), seq.ReverseComplement(segment)...), randDNA(rng, 300)...)
	fwdOnly := SegmentIdentity(segment, subject, DefaultScoring())
	both := BestStrandIdentity(segment, subject, DefaultScoring())
	if both.Identity() < 0.95 {
		t.Errorf("reverse-strand pair not recovered: %.3f", both.Identity())
	}
	if both.Score < fwdOnly.Score {
		t.Errorf("BestStrand returned the worse orientation")
	}
}

func TestFitIdenticalEmbedded(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	segment := randDNA(rng, 500)
	window := append(append(randDNA(rng, 80), segment...), randDNA(rng, 80)...)
	r := Fit(segment, window, DefaultScoring(), 100)
	if r.Matches != 500 || r.Mismatches != 0 || r.Gaps != 0 {
		t.Errorf("fit of exact copy: %+v", r)
	}
	if r.BStart != 80 || r.BEnd != 580 {
		t.Errorf("fit span [%d,%d) want [80,580)", r.BStart, r.BEnd)
	}
	if r.Identity() != 1 {
		t.Errorf("identity %v", r.Identity())
	}
}

func TestFitToleratesIndels(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	base := randDNA(rng, 800)
	// Mutate: a couple of deletions and substitutions.
	seg := append([]byte(nil), base[:300]...)
	seg = append(seg, base[305:600]...) // 5-base deletion
	seg = append(seg, base[600:]...)
	seg[100] = seq.Code2Base[(int(seg[100])+1)%4]
	window := append(append(randDNA(rng, 60), base...), randDNA(rng, 60)...)
	r := Fit(seg, window, DefaultScoring(), 64)
	if r.Identity() < 0.97 {
		t.Errorf("fit identity %.3f for near-identical pair", r.Identity())
	}
}

func TestFitEdgeCases(t *testing.T) {
	sc := DefaultScoring()
	if r := Fit(nil, []byte("ACGT"), sc, 8); r.AlignedColumns() != 0 {
		t.Errorf("empty a: %+v", r)
	}
	if r := Fit([]byte("ACGT"), nil, sc, 8); r.Gaps != 4 {
		t.Errorf("empty b: %+v", r)
	}
	// a longer than b: still aligns with gaps.
	r := Fit([]byte("ACGTACGTACGT"), []byte("ACGT"), sc, 4)
	if r.Matches+r.Mismatches+r.Gaps == 0 {
		t.Errorf("long-a fit: %+v", r)
	}
}

func TestFastIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(27))
	subject := randDNA(rng, 20_000)
	segment := append([]byte(nil), subject[7000:8000]...)
	for i := range segment {
		if rng.Float64() < 0.01 {
			segment[i] = seq.Code2Base[rng.Intn(4)]
		}
	}
	r := FastIdentity(segment, subject, DefaultScoring(), 64)
	if r.PercentIdentity() < 97 {
		t.Errorf("1%% mutated segment scored %.2f%%", r.PercentIdentity())
	}
	if r.BStart < 6900 || r.BEnd > 8100 {
		t.Errorf("fast identity span [%d,%d) off target", r.BStart, r.BEnd)
	}
	// Reverse-strand pair.
	rc := FastIdentity(seq.ReverseComplement(segment), subject, DefaultScoring(), 64)
	if rc.PercentIdentity() < 97 {
		t.Errorf("reverse pair scored %.2f%%", rc.PercentIdentity())
	}
	// Unrelated segment: no shared seed → zero.
	junk := randDNA(rng, 1000)
	if r := FastIdentity(junk, subject, DefaultScoring(), 64); r.PercentIdentity() != 0 {
		t.Errorf("junk scored %.2f%%", r.PercentIdentity())
	}
}

func TestGlobalBandAutoWidens(t *testing.T) {
	// Length difference larger than the requested band must not
	// produce a bogus path.
	a := []byte("ACGTACGTACGTACGTACGT")
	b := []byte("ACGT")
	r := Global(a, b, DefaultScoring(), 1)
	if 2*r.AlignedColumns() != len(a)+len(b)+r.Gaps {
		t.Errorf("inconsistent alignment: %+v", r)
	}
}

func TestCIGARConsistency(t *testing.T) {
	// Property: CIGAR op lengths must account for both sequences'
	// aligned spans, and op counts must match the column tallies.
	check := func(t *testing.T, r Result, aSpan, bSpan int) {
		t.Helper()
		var m, ins, del int
		for _, op := range r.Ops {
			switch op.Op {
			case 'M':
				m += op.Len
			case 'I':
				ins += op.Len
			case 'D':
				del += op.Len
			default:
				t.Fatalf("unknown op %c", op.Op)
			}
		}
		if m != r.Matches+r.Mismatches {
			t.Errorf("CIGAR M=%d vs matches+mismatches=%d", m, r.Matches+r.Mismatches)
		}
		if ins+del != r.Gaps {
			t.Errorf("CIGAR I+D=%d vs gaps=%d", ins+del, r.Gaps)
		}
		if m+ins != aSpan {
			t.Errorf("CIGAR consumes %d of a, span is %d", m+ins, aSpan)
		}
		if m+del != bSpan {
			t.Errorf("CIGAR consumes %d of b, span is %d", m+del, bSpan)
		}
		// Adjacent ops must be merged.
		for i := 1; i < len(r.Ops); i++ {
			if r.Ops[i].Op == r.Ops[i-1].Op {
				t.Errorf("unmerged CIGAR runs: %s", r.CIGAR())
			}
		}
	}
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 20; trial++ {
		a := randDNA(rng, 50+rng.Intn(200))
		b := randDNA(rng, 50+rng.Intn(200))
		rg := Global(a, b, DefaultScoring(), 32)
		check(t, rg, len(a), len(b))
		rl := Local(a, b, DefaultScoring())
		check(t, rl, rl.AEnd-rl.AStart, rl.BEnd-rl.BStart)
		rf := Fit(a, b, DefaultScoring(), 32)
		check(t, rf, len(a), rf.BEnd-rf.BStart)
	}
}

func TestCIGARKnownCases(t *testing.T) {
	sc := DefaultScoring()
	r := Global([]byte("ACGT"), []byte("ACGT"), sc, 4)
	if r.CIGAR() != "4M" {
		t.Errorf("identity CIGAR = %q", r.CIGAR())
	}
	r = Global([]byte("ACGTACGT"), []byte("ACGACGT"), sc, 4)
	if got := r.CIGAR(); got != "3M1I4M" && got != "4M1I3M" {
		t.Errorf("deletion CIGAR = %q", got)
	}
	if (Result{}).CIGAR() != "" {
		t.Error("empty result should have empty CIGAR")
	}
}

func TestResultString(t *testing.T) {
	r := Result{Score: 5, Matches: 5, AEnd: 5, BEnd: 5}
	if r.String() == "" {
		t.Error("empty render")
	}
}
