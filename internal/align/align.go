// Package align provides pairwise sequence alignment: banded global
// (Needleman-Wunsch) and local (Smith-Waterman) alignment with affine
// free ends, plus percent-identity computation. It substitutes for
// BLAST in the paper's Fig. 9 analysis, where each mapped ⟨read end,
// contig⟩ pair is aligned to measure identity.
package align

import (
	"fmt"
	"strings"

	"repro/internal/seq"
)

// Scoring holds the (linear-gap) alignment scores.
type Scoring struct {
	Match    int // ≥ 0
	Mismatch int // ≤ 0
	Gap      int // ≤ 0
}

// DefaultScoring is a standard +1/-1/-1 scheme.
func DefaultScoring() Scoring { return Scoring{Match: 1, Mismatch: -1, Gap: -1} }

// CigarOp is one run of a CIGAR string. Op follows SAM conventions
// with a (the query) as the first sequence: 'M' aligned column
// (match or mismatch), 'I' insertion in a (gap in b), 'D' deletion
// from a (gap in a).
type CigarOp struct {
	Op  byte
	Len int
}

// Result reports an alignment.
type Result struct {
	Score int
	// Matches, Mismatches, Gaps count aligned columns by type.
	Matches, Mismatches, Gaps int
	// AStart/AEnd and BStart/BEnd are the aligned spans (half-open);
	// for global alignment these cover the full sequences.
	AStart, AEnd int
	BStart, BEnd int
	// Ops is the CIGAR of the aligned region (leading/trailing free
	// gaps of fit and local alignments are not included).
	Ops []CigarOp
}

// CIGAR renders Ops as a SAM-style string ("" when empty).
func (r Result) CIGAR() string {
	var b strings.Builder
	for _, op := range r.Ops {
		fmt.Fprintf(&b, "%d%c", op.Len, op.Op)
	}
	return b.String()
}

// cigarBuilder accumulates ops during (reverse-order) traceback and
// finalizes them in forward order with runs merged.
type cigarBuilder struct {
	rev []CigarOp
}

func (cb *cigarBuilder) add(op byte, n int) {
	if n <= 0 {
		return
	}
	if len(cb.rev) > 0 && cb.rev[len(cb.rev)-1].Op == op {
		cb.rev[len(cb.rev)-1].Len += n
		return
	}
	cb.rev = append(cb.rev, CigarOp{Op: op, Len: n})
}

func (cb *cigarBuilder) finish() []CigarOp {
	for i, j := 0, len(cb.rev)-1; i < j; i, j = i+1, j-1 {
		cb.rev[i], cb.rev[j] = cb.rev[j], cb.rev[i]
	}
	return cb.rev
}

// AlignedColumns is the alignment length in columns.
func (r Result) AlignedColumns() int { return r.Matches + r.Mismatches + r.Gaps }

// Identity is Matches / AlignedColumns, in [0,1]; 0 for empty
// alignments.
func (r Result) Identity() float64 {
	n := r.AlignedColumns()
	if n == 0 {
		return 0
	}
	return float64(r.Matches) / float64(n)
}

// PercentIdentity is Identity×100.
func (r Result) PercentIdentity() float64 { return 100 * r.Identity() }

func (r Result) String() string {
	return fmt.Sprintf("score=%d id=%.2f%% a=[%d,%d) b=[%d,%d)",
		r.Score, r.PercentIdentity(), r.AStart, r.AEnd, r.BStart, r.BEnd)
}

const negInf = -1 << 30

// Global computes a banded global alignment of a against b. The band
// half-width must be at least |len(a)-len(b)| for the band to contain
// a full path; Global widens it automatically when it is not.
// Memory is O(band) rows × O(len(b)) columns? No — O((band)·len(a))
// cells arranged as two rolling rows of width 2·band+1.
func Global(a, b []byte, sc Scoring, band int) Result {
	la, lb := len(a), len(b)
	if band < abs(la-lb)+1 {
		band = abs(la-lb) + 1
	}
	width := 2*band + 1
	// score rows, and traceback matrix packed as 2 bits per cell:
	// 0=diag, 1=up (gap in b), 2=left (gap in a).
	prev := make([]int, width)
	cur := make([]int, width)
	trace := make([][]byte, la+1)
	for i := range trace {
		trace[i] = make([]byte, width)
	}

	// Row i covers columns j in [i-band, i+band].
	for d := 0; d < width; d++ {
		j := d - band // column for row 0
		switch {
		case j < 0 || j > lb:
			prev[d] = negInf
		default:
			prev[d] = j * sc.Gap
			trace[0][d] = 2
		}
	}
	for i := 1; i <= la; i++ {
		for d := 0; d < width; d++ {
			j := i - band + d
			if j < 0 || j > lb {
				cur[d] = negInf
				continue
			}
			best := negInf
			var dir byte
			if j > 0 { // diagonal: prev row, column j-1 = same offset d
				v := prev[d]
				if v > negInf/2 {
					s := sc.Mismatch
					if a[i-1] == b[j-1] {
						s = sc.Match
					}
					if v+s > best {
						best, dir = v+s, 0
					}
				}
			}
			if d+1 < width { // up: prev row, column j = offset d+1
				v := prev[d+1]
				if v > negInf/2 && v+sc.Gap > best {
					best, dir = v+sc.Gap, 1
				}
			}
			if d > 0 { // left: same row, column j-1 = offset d-1
				v := cur[d-1]
				if v > negInf/2 && v+sc.Gap > best {
					best, dir = v+sc.Gap, 2
				}
			}
			if j == 0 {
				best, dir = i*sc.Gap, 1
			}
			cur[d] = best
			trace[i][d] = dir
		}
		prev, cur = cur, prev
	}

	res := Result{AEnd: la, BEnd: lb}
	res.Score = prev[lb-la+band]
	// Trace back from (la, lb).
	var cb cigarBuilder
	i, j := la, lb
	for i > 0 || j > 0 {
		d := j - i + band
		switch {
		case i == 0:
			j--
			res.Gaps++
			cb.add('D', 1)
		case j == 0:
			i--
			res.Gaps++
			cb.add('I', 1)
		default:
			switch trace[i][d] {
			case 0:
				if a[i-1] == b[j-1] {
					res.Matches++
				} else {
					res.Mismatches++
				}
				cb.add('M', 1)
				i--
				j--
			case 1:
				res.Gaps++
				cb.add('I', 1)
				i--
			default:
				res.Gaps++
				cb.add('D', 1)
				j--
			}
		}
	}
	res.Ops = cb.finish()
	return res
}

// Local computes an (unbanded) Smith-Waterman local alignment. It is
// O(len(a)·len(b)) time and memory for the traceback matrix, intended
// for segment-scale inputs (a few kbp).
func Local(a, b []byte, sc Scoring) Result {
	la, lb := len(a), len(b)
	if la == 0 || lb == 0 {
		return Result{}
	}
	prev := make([]int, lb+1)
	cur := make([]int, lb+1)
	trace := make([][]byte, la+1) // 0=stop, 1=diag, 2=up, 3=left
	for i := range trace {
		trace[i] = make([]byte, lb+1)
	}
	bestScore, bi, bj := 0, 0, 0
	for i := 1; i <= la; i++ {
		for j := 1; j <= lb; j++ {
			s := sc.Mismatch
			if a[i-1] == b[j-1] {
				s = sc.Match
			}
			v, dir := 0, byte(0)
			if d := prev[j-1] + s; d > v {
				v, dir = d, 1
			}
			if u := prev[j] + sc.Gap; u > v {
				v, dir = u, 2
			}
			if l := cur[j-1] + sc.Gap; l > v {
				v, dir = l, 3
			}
			cur[j] = v
			trace[i][j] = dir
			if v > bestScore {
				bestScore, bi, bj = v, i, j
			}
		}
		prev, cur = cur, prev
		for j := range cur {
			cur[j] = 0
		}
	}
	res := Result{Score: bestScore, AEnd: bi, BEnd: bj}
	var cb cigarBuilder
	i, j := bi, bj
	for i > 0 && j > 0 && trace[i][j] != 0 {
		switch trace[i][j] {
		case 1:
			if a[i-1] == b[j-1] {
				res.Matches++
			} else {
				res.Mismatches++
			}
			cb.add('M', 1)
			i--
			j--
		case 2:
			res.Gaps++
			cb.add('I', 1)
			i--
		default:
			res.Gaps++
			cb.add('D', 1)
			j--
		}
	}
	res.AStart, res.BStart = i, j
	res.Ops = cb.finish()
	return res
}

// SegmentIdentity aligns a query segment to a subject, local-first: it
// returns the percent identity of the best local alignment, which is
// the statistic Fig. 9 reports per mapped pair. To bound cost on long
// subjects the subject is pre-cropped around the best shared-k-mer
// anchor when it exceeds 4× the segment length.
func SegmentIdentity(segment, subject []byte, sc Scoring) Result {
	if len(subject) > 4*len(segment) && len(segment) > 0 {
		if start, ok := anchorCrop(segment, subject); ok {
			lo := start - len(segment)
			if lo < 0 {
				lo = 0
			}
			hi := start + 2*len(segment)
			if hi > len(subject) {
				hi = len(subject)
			}
			sub := Local(segment, subject[lo:hi], sc)
			sub.BStart += lo
			sub.BEnd += lo
			return sub
		}
	}
	return Local(segment, subject, sc)
}

// BestStrandIdentity aligns the segment and its reverse complement
// against the subject and returns the better result. Sketch mapping is
// canonical (strand-oblivious), so a mapped pair may be in either
// relative orientation.
func BestStrandIdentity(segment, subject []byte, sc Scoring) Result {
	fwd := SegmentIdentity(segment, subject, sc)
	rc := SegmentIdentity(seq.ReverseComplement(segment), subject, sc)
	if rc.Score > fwd.Score {
		return rc
	}
	return fwd
}

// anchorCrop finds an exact 16-mer of the segment in the subject and
// returns the subject offset of the first shared 16-mer, so long
// subjects can be cropped before the quadratic local alignment.
func anchorCrop(segment, subject []byte) (int, bool) {
	j, _, ok := anchor(segment, subject)
	return j, ok
}

// anchor locates the first exact 16-mer shared by segment and subject,
// returning the subject offset j and the segment offset i of the seed.
func anchor(segment, subject []byte) (j, i int, ok bool) {
	const ak = 16
	if len(segment) < ak || len(subject) < ak {
		return 0, 0, false
	}
	seeds := make(map[string]int, len(segment)/4)
	for si := 0; si+ak <= len(segment); si += 4 {
		key := string(segment[si : si+ak])
		if _, dup := seeds[key]; !dup {
			seeds[key] = si
		}
	}
	for sj := 0; sj+ak <= len(subject); sj++ {
		if si, hit := seeds[string(subject[sj:sj+ak])]; hit {
			return sj, si, true
		}
	}
	return 0, 0, false
}

// FastIdentity estimates the percent identity of a segment against a
// subject quickly enough for per-candidate verification: it anchors
// the segment with an exact shared 16-mer (trying both strands),
// crops the subject to the implied window, and runs a banded global
// alignment there. Segments with no exact shared seed score 0 —
// exactly the candidates verification should reject. The band absorbs
// indel drift of up to ±band/2 bases across the segment.
func FastIdentity(segment, subject []byte, sc Scoring, band int) Result {
	r, _ := FastIdentityStranded(segment, subject, sc, band)
	return r
}

// FastIdentityStranded is FastIdentity plus the winning orientation:
// reverse=true means the segment aligned as its reverse complement
// (the CIGAR then describes the reverse-complemented segment against
// the subject forward strand, the SAM convention for flag 0x10).
func FastIdentityStranded(segment, subject []byte, sc Scoring, band int) (Result, bool) {
	if band <= 0 {
		band = 64
	}
	if r, ok := fastIdentityOneStrand(segment, subject, sc, band); ok {
		return r, false
	}
	rcSeg := seq.ReverseComplement(segment)
	if r, ok := fastIdentityOneStrand(rcSeg, subject, sc, band); ok {
		return r, true
	}
	return Result{}, false
}

func fastIdentityOneStrand(segment, subject []byte, sc Scoring, band int) (Result, bool) {
	j, i, ok := anchor(segment, subject)
	if !ok {
		return Result{}, false
	}
	start := j - i
	pad := band
	lo := start - pad
	if lo < 0 {
		lo = 0
	}
	hi := start + len(segment) + pad
	if hi > len(subject) {
		hi = len(subject)
	}
	window := subject[lo:hi]
	r := Fit(segment, window, sc, band)
	r.BStart += lo
	r.BEnd += lo
	return r, true
}

// Fit computes a banded fit alignment: the whole of a is aligned, but
// gaps before and after a's span in b are free and uncounted —
// the right shape for scoring a segment against a cropped subject
// window. The band bounds |(j−i) − drift| loosely: row i may use
// columns j with j−i in [−band, (len(b)−len(a))+band].
func Fit(a, b []byte, sc Scoring, band int) Result {
	la, lb := len(a), len(b)
	if la == 0 {
		return Result{BEnd: 0}
	}
	if lb == 0 {
		return Result{Gaps: la, Score: la * sc.Gap, AEnd: la}
	}
	if band < 1 {
		band = 1
	}
	// The offset range must include 0 (a starts at b's start) and
	// lb−la (a ends at b's end) regardless of which sequence is
	// longer, padded by the band.
	dLo := -band
	if v := lb - la - band; v < dLo {
		dLo = v
	}
	dHi := band
	if v := lb - la + band; v > dHi {
		dHi = v
	}
	width := dHi - dLo + 1
	prev := make([]int, width)
	cur := make([]int, width)
	trace := make([][]byte, la+1) // 0=diag, 1=up(gap in b), 2=left(gap in a)
	for i := range trace {
		trace[i] = make([]byte, width)
	}
	// Row 0: leading subject gaps are free.
	for d := 0; d < width; d++ {
		j := dLo + d
		if j < 0 || j > lb {
			prev[d] = negInf
		} else {
			prev[d] = 0
		}
	}
	for i := 1; i <= la; i++ {
		for d := 0; d < width; d++ {
			j := i + dLo + d
			if j < 0 || j > lb {
				cur[d] = negInf
				continue
			}
			best := negInf
			var dir byte
			if j > 0 { // diagonal: (i-1, j-1) → same offset d
				if v := prev[d]; v > negInf/2 {
					s := sc.Mismatch
					if a[i-1] == b[j-1] {
						s = sc.Match
					}
					if v+s > best {
						best, dir = v+s, 0
					}
				}
			}
			if d+1 < width { // up: (i-1, j) → offset d+1
				if v := prev[d+1]; v > negInf/2 && v+sc.Gap > best {
					best, dir = v+sc.Gap, 1
				}
			}
			if d > 0 { // left: (i, j-1) → offset d-1
				if v := cur[d-1]; v > negInf/2 && v+sc.Gap > best {
					best, dir = v+sc.Gap, 2
				}
			}
			if j == 0 { // all of a so far is gapped
				best, dir = i*sc.Gap, 1
			}
			cur[d] = best
			trace[i][d] = dir
		}
		prev, cur = cur, prev
	}
	// Trailing subject gaps are free: best cell anywhere in row la.
	res := Result{AEnd: la}
	bestD := -1
	for d := 0; d < width; d++ {
		j := la + dLo + d
		if j < 0 || j > lb || prev[d] <= negInf/2 {
			continue
		}
		if bestD < 0 || prev[d] > prev[bestD] {
			bestD = d
		}
	}
	if bestD < 0 {
		return Result{}
	}
	res.Score = prev[bestD]
	var cb cigarBuilder
	i, j := la, la+dLo+bestD
	res.BEnd = j
	for i > 0 && j >= 0 {
		if j == 0 {
			res.Gaps += i
			cb.add('I', i)
			i = 0
			break
		}
		d := j - i - dLo
		switch trace[i][d] {
		case 0:
			if a[i-1] == b[j-1] {
				res.Matches++
			} else {
				res.Mismatches++
			}
			cb.add('M', 1)
			i--
			j--
		case 1:
			res.Gaps++
			cb.add('I', 1)
			i--
		default:
			res.Gaps++
			cb.add('D', 1)
			j--
		}
	}
	res.BStart = j
	res.Ops = cb.finish()
	return res
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
