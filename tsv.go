package jem

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ReadTSV parses a mapping table previously written by WriteTSV,
// resolving read and contig names against the given record slices.
// The header line is optional. Unmapped rows ("*") round-trip to
// Mapped=false.
func ReadTSV(r io.Reader, reads, contigs []Record) ([]Mapping, error) {
	readIdx := make(map[string]int, len(reads))
	for i := range reads {
		readIdx[reads[i].ID] = i
	}
	contigIdx := make(map[string]int, len(contigs))
	for i := range contigs {
		contigIdx[contigs[i].ID] = i
	}
	var out []Mapping
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if line == 1 && strings.HasPrefix(text, "read_id") {
			continue
		}
		if text == "" {
			continue
		}
		fields := strings.Split(text, "\t")
		if len(fields) != 4 {
			return nil, fmt.Errorf("jem: tsv line %d: expected 4 tab-separated fields, got %d", line, len(fields))
		}
		ri, ok := readIdx[fields[0]]
		if !ok {
			return nil, fmt.Errorf("jem: tsv line %d: unknown read %q", line, fields[0])
		}
		m := Mapping{ReadIndex: ri, ReadID: fields[0], End: SegmentEnd(fields[1])}
		if m.End != PrefixEnd && m.End != SuffixEnd {
			return nil, fmt.Errorf("jem: tsv line %d: bad end %q", line, fields[1])
		}
		if fields[2] != "*" {
			ci, ok := contigIdx[fields[2]]
			if !ok {
				return nil, fmt.Errorf("jem: tsv line %d: unknown contig %q", line, fields[2])
			}
			trials, err := strconv.Atoi(fields[3])
			if err != nil {
				return nil, fmt.Errorf("jem: tsv line %d: bad shared_trials %q", line, fields[3])
			}
			m.Mapped, m.Contig, m.ContigID, m.SharedTrials = true, ci, fields[2], trials
		}
		out = append(out, m)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
