package jem

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/parallel"
	"repro/internal/seq"
)

// StreamStats summarizes a MapStream run.
type StreamStats struct {
	Reads    int
	Segments int
	Mapped   int
}

// MapStream maps long reads from a FASTA/FASTQ stream without loading
// the whole file: reads are pulled in batches, mapped in parallel, and
// written as TSV in input order. It is the memory-bounded counterpart
// of MapReads for production-sized read sets (the contig index still
// lives in memory, as in the paper).
func (m *Mapper) MapStream(r io.Reader, w io.Writer) (StreamStats, error) {
	const batchSize = 256
	var stats StreamStats
	if _, err := fmt.Fprintln(w, "read_id\tend\tcontig_id\tshared_trials"); err != nil {
		return stats, err
	}
	sr := seq.NewReader(r)
	var batch []Record
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		mappings := m.mapBatch(batch)
		for _, mp := range mappings {
			stats.Segments++
			if mp.Mapped {
				stats.Mapped++
			}
			contig, trials := "*", "0"
			if mp.Mapped {
				contig = mp.ContigID
				trials = fmt.Sprintf("%d", mp.SharedTrials)
			}
			if _, err := fmt.Fprintf(w, "%s\t%s\t%s\t%s\n", mp.ReadID, mp.End, contig, trials); err != nil {
				return err
			}
		}
		batch = batch[:0]
		return nil
	}
	for {
		rec, err := sr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return stats, err
		}
		stats.Reads++
		batch = append(batch, rec)
		if len(batch) >= batchSize {
			if err := flush(); err != nil {
				return stats, err
			}
		}
	}
	return stats, flush()
}

// mapBatch maps one batch of reads with per-worker sessions (sessions
// are cheap relative to a 256-read batch, so per-batch construction is
// fine).
func (m *Mapper) mapBatch(batch []Record) []Mapping {
	out := make([][]Mapping, len(batch))
	parallel.ForEachWorker(len(batch), m.opts.Workers,
		func() *core.Session { return m.core.NewSession() },
		func(sess *core.Session, i int) {
			segs, kinds := core.EndSegments(batch[i].Seq, m.opts.SegmentLen)
			ms := make([]Mapping, len(segs))
			for si, seg := range segs {
				mp := Mapping{ReadIndex: i, ReadID: batch[i].ID, End: PrefixEnd}
				if kinds[si] == core.Suffix {
					mp.End = SuffixEnd
				}
				if hit, ok := sess.MapSegment(seg); ok {
					mp.Mapped = true
					mp.Contig = int(hit.Subject)
					mp.ContigID = m.core.Subject(hit.Subject).Name
					mp.SharedTrials = int(hit.Count)
				}
				ms[si] = mp
			}
			out[i] = ms
		})
	flat := make([]Mapping, 0, 2*len(batch))
	for _, ms := range out {
		flat = append(flat, ms...)
	}
	return flat
}
