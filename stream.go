package jem

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strconv"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/seq"
)

// Stats is a snapshot of the per-phase counters of one Stream run:
// how much came in, how much work the sketch-table lookups did, and
// where the wall time went. Phases overlap (the stream is pipelined),
// so the wall times measure work inside each phase, not elapsed
// stream time.
//
// Every event a run records lands twice: in the run's own delta
// accumulators (which become this Stats) and in the mapper's
// obs.Registry (see Metrics) — which can be watched live via
// jem-mapper -metrics-addr. The registry aggregates across runs, so
// with N concurrent Map/Stream calls on one Mapper each call's Stats
// reports exactly its own work and the N Stats sum to the registry
// movement.
type Stats struct {
	// Reads is the number of well-formed records pulled from the input
	// stream (bad records are counted separately in BadRecords).
	Reads int
	// Segments is the number of end segments mapped (≤ 2 per read).
	Segments int
	// Mapped counts segments that hit a contig.
	Mapped int
	// BadRecords counts malformed or over-length records encountered;
	// non-zero only under the skip and quarantine policies (the fail
	// policy aborts on the first one).
	BadRecords int
	// Quarantined counts bad records handled under the quarantine
	// policy (each one also produced a sidecar entry when a sidecar
	// writer was configured).
	Quarantined int
	// WorkerPanics counts batches lost to a recovered worker panic.
	WorkerPanics int
	// PostingsScanned is the total number of sketch-table postings
	// examined across all lookups — the dominant unit of query work.
	PostingsScanned int64
	// ShardsLost is the sorted set of shard ids that failed terminally
	// during the run: shards of a remote fleet
	// (OpenOptions.ShardServers) whose query budget was exhausted, or
	// load-on-demand shards of a memory-budgeted open
	// (Options.Memory) whose fault-in verification failed. A non-empty
	// value marks the output as a degraded answer: every row was
	// produced, but segments whose probes routed to a lost shard were
	// mapped without that shard's postings (see docs/DISTRIBUTED.md
	// and docs/MEMORY.md). jem-serve surfaces it as the
	// X-JEM-Shards-Lost response header.
	ShardsLost []int
	// ReadWall is time spent parsing FASTA/FASTQ records.
	ReadWall time.Duration
	// MapWall is aggregate worker time spent sketching and mapping.
	MapWall time.Duration
	// WriteWall is time spent formatting and writing TSV rows.
	WriteWall time.Duration
}

// StreamStats is the pre-pipelining name of Stats, kept as an alias.
type StreamStats = Stats

// BadRecordPolicy says what the streaming pipeline does when the
// input yields a malformed or over-length record.
type BadRecordPolicy uint8

const (
	// BadRecordFail aborts the stream on the first bad record — the
	// default, and the pre-quarantine behavior.
	BadRecordFail BadRecordPolicy = iota
	// BadRecordSkip counts the bad record and continues with the next
	// parseable record.
	BadRecordSkip
	// BadRecordQuarantine counts the bad record, appends an entry to
	// the quarantine sidecar (when one is configured), and continues.
	BadRecordQuarantine
)

// ParseBadRecordPolicy parses the jem-mapper -on-bad-record flag
// values: "fail", "skip" or "quarantine".
func ParseBadRecordPolicy(s string) (BadRecordPolicy, error) {
	switch s {
	case "fail":
		return BadRecordFail, nil
	case "skip":
		return BadRecordSkip, nil
	case "quarantine":
		return BadRecordQuarantine, nil
	}
	return BadRecordFail, fmt.Errorf("jem: unknown bad-record policy %q (want fail, skip or quarantine)", s)
}

func (p BadRecordPolicy) String() string {
	switch p {
	case BadRecordSkip:
		return "skip"
	case BadRecordQuarantine:
		return "quarantine"
	default:
		return "fail"
	}
}

// StreamOptions configures one Mapper.Stream call. The zero value is
// the historical default: the mapper's Workers setting, fail on the
// first bad record, no length limit, no sidecar.
type StreamOptions struct {
	// Workers overrides the mapper's Workers setting for this stream;
	// 0 keeps it.
	Workers int
	// OnBadRecord selects the malformed-record policy.
	OnBadRecord BadRecordPolicy
	// Quarantine, when non-nil and OnBadRecord is BadRecordQuarantine,
	// receives one tab-separated line per quarantined record:
	// input line number, record ID ("*" when unknown), parse error.
	// Sidecar write errors are sticky: the stream keeps running and
	// the first sidecar error is reported when the run ends (unless a
	// more important error happened).
	Quarantine io.Writer
	// MaxRecordLen, when > 0, treats records longer than this many
	// bases as bad records: an over-length read in a long-read stream
	// is usually an upstream concatenation bug, and mapping it would
	// silently dilute sketch quality.
	MaxRecordLen int
}

// streamBatch is the number of reads handed to a worker at once:
// large enough to amortize channel traffic, small enough that the
// in-order writer never buffers much.
const streamBatch = 64

type streamWork struct {
	seq  int // batch sequence number (write order)
	base int // global read index of recs[0]
	recs []Record
}

type streamResult struct {
	seq      int
	mappings []Mapping
	// err is set when the batch was lost to a recovered worker panic;
	// mappings is nil then.
	err error
}

// quarantineSidecar appends bad-record entries to the sidecar writer.
// Write errors are sticky: after the first failure later entries are
// dropped and the retained error surfaces when the stream ends. The
// sidecar is only ever touched from the reader goroutine.
type quarantineSidecar struct {
	w   io.Writer
	err error
	buf []byte
}

func (q *quarantineSidecar) record(line int, id string, cause error) {
	if q.w == nil || q.err != nil {
		return
	}
	if id == "" {
		id = "*"
	}
	b := q.buf[:0]
	b = strconv.AppendInt(b, int64(line), 10)
	b = append(b, '\t')
	b = append(b, id...)
	b = append(b, '\t')
	b = append(b, cause.Error()...)
	b = append(b, '\n')
	q.buf = b
	if _, err := q.w.Write(b); err != nil {
		q.err = err
	}
}

// Stream is the canonical streaming entry point: it maps long reads
// from a FASTA/FASTQ stream without loading the whole file. The
// stream is pipelined: a reader goroutine
// batches records, a worker pool maps batches concurrently with
// persistent per-worker sessions, and the calling goroutine writes TSV
// rows in input order as batches complete. It is the memory-bounded
// counterpart of Map for production-sized read sets (the contig
// index still lives in memory, as in the paper).
//
// Robustness contracts:
//
//   - Cancellation: when ctx is cancelled the reader stops pulling
//     records, every batch already in flight is drained, mapped and
//     written, and ctx.Err() is returned — partial output is flushed
//     and fully accounted in Stats, never discarded.
//   - A mid-stream read error does not discard work: every record read
//     before the error is still mapped, written and counted before the
//     error is propagated.
//   - Bad records: under opts.OnBadRecord skip/quarantine, a malformed
//     or over-length record is counted (Stats.BadRecords, and the
//     obs registry's jem_stream_bad_records_total), optionally written
//     to the quarantine sidecar, and the reader resynchronizes to the
//     next record. Only structural errors (seq.RecordError) are
//     skippable; I/O errors always abort the stream.
//   - Worker panics are recovered and converted to per-batch errors:
//     under the fail policy the first one is returned (after the
//     pipeline drains); under skip/quarantine the batch's rows are
//     lost but counted (Stats.WorkerPanics) and the stream continues.
//     The process never crashes.
//   - A write error stops output but not accounting: the pipeline
//     still drains and counts every batch that was mapped, so Stats
//     reflects the work actually done.
//   - Index degradation: when a load-on-demand shard of a budgeted
//     open (Options.Memory) fails its fault-in verification, the
//     stream completes on the surviving shards — rows stay well-formed
//     but were mapped without the lost shard's postings — and the
//     first such error is returned after lower-level errors (write,
//     batch, read) have had their say.
//
// Counters and wall times are recorded into the mapper's obs.Registry
// (see Metrics) and, independently, into this run's own accumulators;
// the returned Stats comes from the latter, so concurrent traffic on
// the same mapper (another Stream, Map) never contaminates a run's
// Stats — the registry carries the fleet-wide aggregate.
func (m *Mapper) Stream(ctx context.Context, r io.Reader, w io.Writer, opts StreamOptions) (Stats, error) {
	run := m.met.newRun()
	if err := opts.validate(); err != nil {
		return run.stats(), err
	}
	// Request-scoped tracing: when the context carries a span (a traced
	// serving request), this run attaches per-phase children and
	// per-shard scatter-gather timings to it. Untraced runs skip every
	// trace-only cost, including the per-shard clock reads.
	sp := obs.SpanFromContext(ctx)
	var (
		shardMu  sync.Mutex
		shardAgg []core.ShardWork
		indexErr error
	)
	// Fault-injection points (no-ops unless a test armed them).
	r = fault.Reader(r)
	w = fault.Writer(w)
	if _, err := io.WriteString(w, tsvHeader); err != nil {
		return run.stats(), err
	}
	streamWorkers := opts.Workers
	if streamWorkers == 0 {
		streamWorkers = m.opts.Workers
	}
	workers := parallel.Workers(streamWorkers)
	work := make(chan streamWork, workers)
	results := make(chan streamResult, workers)
	sidecar := &quarantineSidecar{}
	if opts.OnBadRecord == BadRecordQuarantine {
		sidecar.w = opts.Quarantine
	}

	// Reader: pull records and hand fixed-size batches to the workers.
	// On a mid-stream error or cancellation the partial batch is still
	// flushed so already-read records reach the writer before the
	// error returns.
	var readErr error
	go func() {
		defer close(work)
		var readWall time.Duration
		sr := seq.NewReader(r)
		seqno, nextIndex := 0, 0
		batch := make([]Record, 0, streamBatch)
		for {
			if err := ctx.Err(); err != nil {
				readErr = err
				break
			}
			t0 := time.Now()
			rec, err := sr.Read()
			readWall += time.Since(t0)
			if err == io.EOF {
				break
			}
			if err == nil && opts.MaxRecordLen > 0 && len(rec.Seq) > opts.MaxRecordLen {
				err = &seq.RecordError{Line: sr.Line(), ID: rec.ID,
					Msg: fmt.Sprintf("record length %d exceeds limit %d", len(rec.Seq), opts.MaxRecordLen)}
			}
			if err != nil {
				if opts.OnBadRecord == BadRecordFail || !seq.IsRecordError(err) {
					readErr = err
					break
				}
				run.incBadRecord()
				if opts.OnBadRecord == BadRecordQuarantine {
					run.incQuarantined()
					sidecar.record(sr.Line(), recordErrID(err), err)
				}
				t0 = time.Now()
				rerr := sr.Resync()
				readWall += time.Since(t0)
				if rerr != nil {
					if rerr != io.EOF {
						readErr = rerr
					}
					break
				}
				continue
			}
			run.incRead()
			batch = append(batch, rec)
			if len(batch) == streamBatch {
				work <- streamWork{seq: seqno, base: nextIndex, recs: batch}
				seqno++
				nextIndex += len(batch)
				batch = make([]Record, 0, streamBatch)
			}
		}
		if len(batch) > 0 {
			work <- streamWork{seq: seqno, base: nextIndex, recs: batch}
		}
		// Recorded before close(work), which happens-before the workers
		// exit and therefore before the final stats read.
		run.addReadWall(readWall)
	}()

	// Workers: persistent sessions, one per goroutine, reused across
	// every batch the worker processes (sessions carry the lazy-update
	// counter arrays, so reuse is what makes per-query cost O(hits)).
	// Posting-scan counts flow into the registry per segment via the
	// session's core instrumentation. Panics inside a batch are
	// recovered in mapStreamBatch; a worker never takes the process
	// down.
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			var mapWall time.Duration
			defer wg.Done()
			sess := m.core.NewSession().WithContext(ctx)
			if sp != nil {
				sess.EnableShardTiming()
			}
			// Runs before wg.Done: the worker's wall time and its
			// session's posting scans are attributed to this run while
			// the pipeline is still draining.
			defer func() {
				run.addMapWall(mapWall)
				run.addPostings(sess.PostingsScanned())
				run.addLostShards(sess.LostShards())
				shardMu.Lock()
				if serr := sess.Err(); serr != nil && indexErr == nil {
					indexErr = serr
				}
				if sp != nil {
					shardAgg = mergeShardWork(shardAgg, sess.ShardWork())
				}
				shardMu.Unlock()
			}()
			for item := range work {
				t0 := time.Now()
				res := m.mapStreamBatch(run, sess, item)
				mapWall += time.Since(t0)
				results <- res
			}
		}()
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	writeErr, batchErr := m.drainStreamResults(run, w, results, opts.OnBadRecord == BadRecordFail)

	stats := run.stats()
	if sp != nil {
		// Workers are all done (drainStreamResults returns only after
		// the results channel closes), so shardAgg is complete.
		attachStreamSpans(sp, stats, shardAgg)
	}
	switch {
	case writeErr != nil:
		return stats, writeErr
	case batchErr != nil:
		return stats, batchErr
	case readErr != nil:
		return stats, readErr
	case indexErr != nil:
		return stats, indexErr
	case sidecar.err != nil:
		return stats, fmt.Errorf("jem: quarantine sidecar write failed: %w", sidecar.err)
	}
	return stats, nil
}

// recordErrID extracts the record ID from a seq.RecordError chain, ""
// when unavailable.
func recordErrID(err error) string {
	var re *seq.RecordError
	if errors.As(err, &re) {
		return re.ID
	}
	return ""
}

// mapStreamBatch maps one batch, converting a panic anywhere in the
// sketch/lookup path into a per-batch error instead of crashing the
// process. The injected fault.WorkerPanic point lives here so tests
// can prove the recovery path end to end.
func (m *Mapper) mapStreamBatch(run *runScope, sess *core.Session, item streamWork) (res streamResult) {
	defer func() {
		if r := recover(); r != nil {
			run.incPanic()
			res = streamResult{seq: item.seq, err: fmt.Errorf(
				"jem: worker panic mapping batch %d (reads %d-%d): %v",
				item.seq, item.base, item.base+len(item.recs)-1, r)}
		}
	}()
	if _, ok := fault.Fire(fault.WorkerPanic); ok {
		panic("injected worker panic")
	}
	out := make([]Mapping, 0, 2*len(item.recs))
	for j := range item.recs {
		out = m.appendSegmentMappings(out, sess, item.base+j, item.recs[j])
	}
	return streamResult{seq: item.seq, mappings: out}
}

// drainStreamResults is Stream's writer stage (run on the calling
// goroutine): reassemble input order and emit TSV rows. The results
// channel is always drained fully, even after a write or batch error,
// so the pipeline goroutines never leak; the first write error (and,
// when failOnBatchErr, the first batch error) is returned and further
// writes are skipped while accounting continues.
//
// pending is bounded by the pipeline depth, not the input size: a
// missing batch `next` can only be overtaken by batches that are
// already in flight — at most cap(work) queued + one per worker +
// cap(results) queued, ~3×workers batches — before the reader
// blocks on the work channel. A stalled batch therefore pauses the
// stream; it cannot balloon memory.
//
//jem:hotpath
func (m *Mapper) drainStreamResults(run *runScope, w io.Writer, results <-chan streamResult, failOnBatchErr bool) (writeErr, batchErr error) {
	var (
		writeWall time.Duration
		buf       = make([]byte, 0, 128)
	)
	pending := make(map[int]streamResult)
	next := 0
	for res := range results {
		pending[res.seq] = res
		for {
			cur, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			next++
			if cur.err != nil {
				// A panicked batch has no rows. Under the fail policy the
				// first batch error becomes the run's error (after the
				// drain); otherwise it was already counted and the stream
				// moves on.
				if failOnBatchErr && batchErr == nil {
					batchErr = cur.err
				}
				continue
			}
			ms := cur.mappings
			// Count every drained batch — the mapping work happened
			// whether or not the rows can still be written — then skip
			// only the write once a write error is sticky.
			segs, hits := int64(0), int64(0)
			for i := range ms {
				segs++
				if ms[i].Mapped {
					hits++
				}
			}
			run.addDrained(segs, hits)
			if writeErr != nil {
				continue
			}
			t0 := time.Now()
			for i := range ms {
				buf = appendTSVRow(buf[:0], &ms[i])
				if _, err := w.Write(buf); err != nil {
					writeErr = err
					break
				}
			}
			writeWall += time.Since(t0)
		}
	}
	run.addWriteWall(writeWall)
	return writeErr, batchErr
}

// appendSegmentMappings maps both end segments of one read and
// appends their Mappings.
func (m *Mapper) appendSegmentMappings(out []Mapping, sess *core.Session, readIndex int, rec Record) []Mapping {
	segs, kinds := core.EndSegments(rec.Seq, m.opts.SegmentLen)
	for si, seg := range segs {
		mp := Mapping{ReadIndex: readIndex, ReadID: rec.ID, End: PrefixEnd}
		if kinds[si] == core.Suffix {
			mp.End = SuffixEnd
		}
		if hit, ok := sess.MapSegment(seg); ok {
			mp.Mapped = true
			mp.Contig = int(hit.Subject)
			mp.ContigID = m.core.Subject(hit.Subject).Name
			mp.SharedTrials = int(hit.Count)
		}
		out = append(out, mp)
	}
	return out
}
