package jem

import (
	"io"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/parallel"
	"repro/internal/seq"
)

// Stats is a snapshot of the per-phase counters of one MapStream run:
// how much came in, how much work the sketch-table lookups did, and
// where the wall time went. Phases overlap (the stream is pipelined),
// so the wall times measure work inside each phase, not elapsed
// stream time.
//
// Stats is a read-out of the mapper's obs.Registry (see Metrics): the
// registry instruments are snapshotted when MapStream starts and the
// difference at the end is returned, so the registry — which can be
// watched live via jem-mapper -metrics-addr — and the returned Stats
// can never disagree.
type Stats struct {
	// Reads is the number of records pulled from the input stream.
	Reads int
	// Segments is the number of end segments mapped (≤ 2 per read).
	Segments int
	// Mapped counts segments that hit a contig.
	Mapped int
	// PostingsScanned is the total number of sketch-table postings
	// examined across all lookups — the dominant unit of query work.
	PostingsScanned int64
	// ReadWall is time spent parsing FASTA/FASTQ records.
	ReadWall time.Duration
	// MapWall is aggregate worker time spent sketching and mapping.
	MapWall time.Duration
	// WriteWall is time spent formatting and writing TSV rows.
	WriteWall time.Duration
}

// StreamStats is the pre-pipelining name of Stats, kept as an alias.
type StreamStats = Stats

// streamBatch is the number of reads handed to a worker at once:
// large enough to amortize channel traffic, small enough that the
// in-order writer never buffers much.
const streamBatch = 64

type streamWork struct {
	seq  int // batch sequence number (write order)
	base int // global read index of recs[0]
	recs []Record
}

type streamResult struct {
	seq      int
	mappings []Mapping
}

// MapStream maps long reads from a FASTA/FASTQ stream without loading
// the whole file. The stream is pipelined: a reader goroutine batches
// records, a worker pool maps batches concurrently with persistent
// per-worker sessions, and the calling goroutine writes TSV rows in
// input order as batches complete. It is the memory-bounded
// counterpart of MapReads for production-sized read sets (the contig
// index still lives in memory, as in the paper).
//
// A mid-stream read error does not discard work: every record read
// before the error is still mapped and written, and counted in the
// returned Stats, before the error is propagated. A write error stops
// output but not accounting: the pipeline still drains and counts
// every batch that was mapped, so Stats reflects the work actually
// done.
//
// Counters and wall times are recorded into the mapper's obs.Registry
// (see Metrics); the returned Stats is the registry movement between
// start and end of this call. Concurrent traffic on the same mapper
// (another MapStream, MapReads) would fold into the same instruments,
// so per-run Stats are only meaningful when runs don't overlap.
func (m *Mapper) MapStream(r io.Reader, w io.Writer) (Stats, error) {
	met := m.met
	base := met.snapshot()
	if _, err := io.WriteString(w, tsvHeader); err != nil {
		return met.statsSince(base), err
	}
	workers := parallel.Workers(m.opts.Workers)
	work := make(chan streamWork, workers)
	results := make(chan streamResult, workers)

	// Reader: pull records and hand fixed-size batches to the workers.
	// On a mid-stream error the partial batch is still flushed so
	// already-read records reach the writer before the error returns.
	var readErr error
	go func() {
		defer close(work)
		var readWall time.Duration
		sr := seq.NewReader(r)
		seqno := 0
		batch := make([]Record, 0, streamBatch)
		for {
			t0 := time.Now()
			rec, err := sr.Read()
			readWall += time.Since(t0)
			if err != nil {
				if err != io.EOF {
					readErr = err
				}
				break
			}
			met.reads.Inc()
			batch = append(batch, rec)
			if len(batch) == streamBatch {
				work <- streamWork{seq: seqno, base: seqno * streamBatch, recs: batch}
				seqno++
				batch = make([]Record, 0, streamBatch)
			}
		}
		if len(batch) > 0 {
			work <- streamWork{seq: seqno, base: seqno * streamBatch, recs: batch}
		}
		// Recorded before close(work), which happens-before the workers
		// exit and therefore before the writer's final snapshot.
		met.readWall.Add(readWall.Seconds())
	}()

	// Workers: persistent sessions, one per goroutine, reused across
	// every batch the worker processes (sessions carry the lazy-update
	// counter arrays, so reuse is what makes per-query cost O(hits)).
	// Posting-scan counts flow into the registry per segment via the
	// session's core instrumentation.
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			var mapWall time.Duration
			defer wg.Done()
			defer func() { met.mapWall.Add(mapWall.Seconds()) }() // runs before wg.Done
			sess := m.core.NewSession()
			for item := range work {
				t0 := time.Now()
				out := make([]Mapping, 0, 2*len(item.recs))
				for j := range item.recs {
					out = m.appendSegmentMappings(out, sess, item.base+j, item.recs[j])
				}
				mapWall += time.Since(t0)
				results <- streamResult{seq: item.seq, mappings: out}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	writeErr := m.drainStreamResults(w, results)

	stats := met.statsSince(base)
	if writeErr != nil {
		return stats, writeErr
	}
	return stats, readErr
}

// drainStreamResults is MapStream's writer stage (run on the calling
// goroutine): reassemble input order and emit TSV rows. The results
// channel is always drained fully, even after a write error, so the
// pipeline goroutines never leak; the first write error is returned
// and further writes are skipped while accounting continues.
//
// pending is bounded by the pipeline depth, not the input size: a
// missing batch `next` can only be overtaken by batches that are
// already in flight — at most cap(work) queued + one per worker +
// cap(results) queued, ~3×workers batches — before the reader
// blocks on the work channel. A stalled batch therefore pauses the
// stream; it cannot balloon memory.
//
//jem:hotpath
func (m *Mapper) drainStreamResults(w io.Writer, results <-chan streamResult) error {
	met := m.met
	var (
		writeErr  error
		writeWall time.Duration
		buf       = make([]byte, 0, 128)
	)
	pending := make(map[int][]Mapping)
	next := 0
	for res := range results {
		pending[res.seq] = res.mappings
		for {
			ms, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			next++
			// Count every drained batch — the mapping work happened
			// whether or not the rows can still be written — then skip
			// only the write once a write error is sticky.
			segs, hits := int64(0), int64(0)
			for i := range ms {
				segs++
				if ms[i].Mapped {
					hits++
				}
			}
			met.segments.Add(segs)
			met.mapped.Add(hits)
			if writeErr != nil {
				continue
			}
			t0 := time.Now()
			for i := range ms {
				buf = appendTSVRow(buf[:0], &ms[i])
				if _, err := w.Write(buf); err != nil {
					writeErr = err
					break
				}
			}
			writeWall += time.Since(t0)
		}
	}
	met.writeWall.Add(writeWall.Seconds())
	return writeErr
}

// appendSegmentMappings maps both end segments of one read and
// appends their Mappings.
func (m *Mapper) appendSegmentMappings(out []Mapping, sess *core.Session, readIndex int, rec Record) []Mapping {
	segs, kinds := core.EndSegments(rec.Seq, m.opts.SegmentLen)
	for si, seg := range segs {
		mp := Mapping{ReadIndex: readIndex, ReadID: rec.ID, End: PrefixEnd}
		if kinds[si] == core.Suffix {
			mp.End = SuffixEnd
		}
		if hit, ok := sess.MapSegment(seg); ok {
			mp.Mapped = true
			mp.Contig = int(hit.Subject)
			mp.ContigID = m.core.Subject(hit.Subject).Name
			mp.SharedTrials = int(hit.Count)
		}
		out = append(out, mp)
	}
	return out
}
