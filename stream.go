package jem

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/parallel"
	"repro/internal/seq"
)

// Stats is a snapshot of the per-phase counters of one MapStream run:
// how much came in, how much work the sketch-table lookups did, and
// where the wall time went. Phases overlap (the stream is pipelined),
// so the wall times measure work inside each phase, not elapsed
// stream time.
type Stats struct {
	// Reads is the number of records pulled from the input stream.
	Reads int
	// Segments is the number of end segments mapped (≤ 2 per read).
	Segments int
	// Mapped counts segments that hit a contig.
	Mapped int
	// PostingsScanned is the total number of sketch-table postings
	// examined across all lookups — the dominant unit of query work.
	PostingsScanned int64
	// ReadWall is time spent parsing FASTA/FASTQ records.
	ReadWall time.Duration
	// MapWall is aggregate worker time spent sketching and mapping.
	MapWall time.Duration
	// WriteWall is time spent formatting and writing TSV rows.
	WriteWall time.Duration
}

// StreamStats is the pre-pipelining name of Stats, kept as an alias.
type StreamStats = Stats

// streamBatch is the number of reads handed to a worker at once:
// large enough to amortize channel traffic, small enough that the
// in-order writer never buffers much.
const streamBatch = 64

type streamWork struct {
	seq  int // batch sequence number (write order)
	base int // global read index of recs[0]
	recs []Record
}

type streamResult struct {
	seq      int
	mappings []Mapping
}

// MapStream maps long reads from a FASTA/FASTQ stream without loading
// the whole file. The stream is pipelined: a reader goroutine batches
// records, a worker pool maps batches concurrently with persistent
// per-worker sessions, and the calling goroutine writes TSV rows in
// input order as batches complete. It is the memory-bounded
// counterpart of MapReads for production-sized read sets (the contig
// index still lives in memory, as in the paper).
//
// A mid-stream read error does not discard work: every record read
// before the error is still mapped and written, and counted in the
// returned Stats, before the error is propagated.
func (m *Mapper) MapStream(r io.Reader, w io.Writer) (Stats, error) {
	var stats Stats
	if _, err := fmt.Fprintln(w, "read_id\tend\tcontig_id\tshared_trials"); err != nil {
		return stats, err
	}
	workers := parallel.Workers(m.opts.Workers)
	work := make(chan streamWork, workers)
	results := make(chan streamResult, workers)

	// Reader: pull records and hand fixed-size batches to the workers.
	// On a mid-stream error the partial batch is still flushed so
	// already-read records reach the writer before the error returns.
	var (
		readErr   error
		readCount int
		readWall  time.Duration
	)
	go func() {
		defer close(work)
		sr := seq.NewReader(r)
		seqno := 0
		batch := make([]Record, 0, streamBatch)
		for {
			t0 := time.Now()
			rec, err := sr.Read()
			readWall += time.Since(t0)
			if err != nil {
				if err != io.EOF {
					readErr = err
				}
				break
			}
			readCount++
			batch = append(batch, rec)
			if len(batch) == streamBatch {
				work <- streamWork{seq: seqno, base: seqno * streamBatch, recs: batch}
				seqno++
				batch = make([]Record, 0, streamBatch)
			}
		}
		if len(batch) > 0 {
			work <- streamWork{seq: seqno, base: seqno * streamBatch, recs: batch}
		}
	}()

	// Workers: persistent sessions, one per goroutine, reused across
	// every batch the worker processes (sessions carry the lazy-update
	// counter arrays, so reuse is what makes per-query cost O(hits)).
	var (
		mapWall  atomic.Int64
		postings atomic.Int64
		wg       sync.WaitGroup
	)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sess := m.core.NewSession()
			defer func() { postings.Add(sess.PostingsScanned()) }()
			for item := range work {
				t0 := time.Now()
				out := make([]Mapping, 0, 2*len(item.recs))
				for j := range item.recs {
					out = m.appendSegmentMappings(out, sess, item.base+j, item.recs[j])
				}
				mapWall.Add(int64(time.Since(t0)))
				results <- streamResult{seq: item.seq, mappings: out}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	// Writer (this goroutine): reassemble input order and emit rows.
	// The results channel is always drained fully, even after a write
	// error, so the pipeline goroutines never leak.
	var (
		writeErr  error
		writeWall time.Duration
	)
	pending := make(map[int][]Mapping)
	next := 0
	for res := range results {
		pending[res.seq] = res.mappings
		for {
			ms, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			next++
			if writeErr != nil {
				continue
			}
			t0 := time.Now()
			for _, mp := range ms {
				stats.Segments++
				if mp.Mapped {
					stats.Mapped++
				}
				contig, trials := "*", "0"
				if mp.Mapped {
					contig = mp.ContigID
					trials = fmt.Sprintf("%d", mp.SharedTrials)
				}
				if _, err := fmt.Fprintf(w, "%s\t%s\t%s\t%s\n", mp.ReadID, mp.End, contig, trials); err != nil {
					writeErr = err
					break
				}
			}
			writeWall += time.Since(t0)
		}
	}

	stats.Reads = readCount
	stats.PostingsScanned = postings.Load()
	stats.ReadWall = readWall
	stats.MapWall = time.Duration(mapWall.Load())
	stats.WriteWall = writeWall
	if writeErr != nil {
		return stats, writeErr
	}
	return stats, readErr
}

// appendSegmentMappings maps both end segments of one read and
// appends their Mappings.
func (m *Mapper) appendSegmentMappings(out []Mapping, sess *core.Session, readIndex int, rec Record) []Mapping {
	segs, kinds := core.EndSegments(rec.Seq, m.opts.SegmentLen)
	for si, seg := range segs {
		mp := Mapping{ReadIndex: readIndex, ReadID: rec.ID, End: PrefixEnd}
		if kinds[si] == core.Suffix {
			mp.End = SuffixEnd
		}
		if hit, ok := sess.MapSegment(seg); ok {
			mp.Mapped = true
			mp.Contig = int(hit.Subject)
			mp.ContigID = m.core.Subject(hit.Subject).Name
			mp.SharedTrials = int(hit.Count)
		}
		out = append(out, mp)
	}
	return out
}
