package jem_test

import (
	"fmt"
	"math/rand"
	"os"

	"repro"
)

// deterministicDNA produces a fixed pseudo-random sequence so example
// outputs are stable.
func deterministicDNA(seed int64, n int) []byte {
	rng := rand.New(rand.NewSource(seed))
	bases := []byte("ACGT")
	s := make([]byte, n)
	for i := range s {
		s[i] = bases[rng.Intn(4)]
	}
	return s
}

// ExampleNewMapper shows the core flow: index contigs, map a read's
// end segments, inspect the best hits.
func ExampleNewMapper() {
	genome := deterministicDNA(7, 12_000)
	contigs := []jem.Record{
		{ID: "contig_a", Seq: genome[:6000]},
		{ID: "contig_b", Seq: genome[6000:]},
	}
	// A read bridging the two contigs.
	read := jem.Record{ID: "read_1", Seq: genome[4000:9000]}

	mapper, err := jem.NewMapper(contigs, jem.DefaultOptions())
	if err != nil {
		panic(err)
	}
	for _, m := range mapper.MapReads([]jem.Record{read}) {
		fmt.Printf("%s %s -> %s\n", m.ReadID, m.End, m.ContigID)
	}
	// Output:
	// read_1 prefix -> contig_a
	// read_1 suffix -> contig_b
}

// ExampleMapper_MapSegment maps one ad-hoc segment.
func ExampleMapper_MapSegment() {
	genome := deterministicDNA(11, 8000)
	contigs := []jem.Record{{ID: "only", Seq: genome}}
	mapper, err := jem.NewMapper(contigs, jem.DefaultOptions())
	if err != nil {
		panic(err)
	}
	contig, trials, ok := mapper.MapSegment(genome[2000:3000])
	fmt.Println(ok, contigs[contig].ID, trials)
	// 26 of the 30 trials collide: interior segments sit between the
	// subject's interval anchors, so a few trials pick boundary
	// minimizers the query's single interval does not contain.
	// Output:
	// true only 26
}

// ExampleBuildScaffolds links contigs through bridging reads.
func ExampleBuildScaffolds() {
	genome := deterministicDNA(13, 15_000)
	contigs := []jem.Record{
		{ID: "c0", Seq: genome[:5000]},
		{ID: "c1", Seq: genome[5000:10_000]},
		{ID: "c2", Seq: genome[10_000:]},
	}
	reads := []jem.Record{
		{ID: "r0", Seq: genome[3000:7000]},   // bridges c0-c1
		{ID: "r1", Seq: genome[8000:12_000]}, // bridges c1-c2
	}
	mapper, err := jem.NewMapper(contigs, jem.DefaultOptions())
	if err != nil {
		panic(err)
	}
	scaffolds := jem.BuildScaffolds(mapper.MapReads(reads), len(contigs), 1)
	for _, sc := range scaffolds {
		fmt.Println(len(sc.Contigs), "contigs chained")
	}
	// Output:
	// 3 contigs chained
}

// ExampleWriteTSV shows the interchange format.
func ExampleWriteTSV() {
	mappings := []jem.Mapping{
		{ReadID: "r1", End: jem.PrefixEnd, Mapped: true, ContigID: "c7", SharedTrials: 28},
		{ReadID: "r1", End: jem.SuffixEnd},
	}
	if err := jem.WriteTSV(os.Stdout, mappings); err != nil {
		panic(err)
	}
	// Output:
	// read_id	end	contig_id	shared_trials
	// r1	prefix	c7	28
	// r1	suffix	*	0
}
