package jem_test

import (
	"fmt"
	"math/rand"
	"os"

	"repro"
)

// deterministicDNA produces a fixed pseudo-random sequence so example
// outputs are stable.
func deterministicDNA(seed int64, n int) []byte {
	rng := rand.New(rand.NewSource(seed))
	bases := []byte("ACGT")
	s := make([]byte, n)
	for i := range s {
		s[i] = bases[rng.Intn(4)]
	}
	return s
}

// ExampleNewMapper shows the core flow: index contigs, map a read's
// end segments, inspect the best hits.
func ExampleNewMapper() {
	genome := deterministicDNA(7, 12_000)
	contigs := []jem.Record{
		{ID: "contig_a", Seq: genome[:6000]},
		{ID: "contig_b", Seq: genome[6000:]},
	}
	// A read bridging the two contigs.
	read := jem.Record{ID: "read_1", Seq: genome[4000:9000]}

	mapper, err := jem.NewMapper(contigs, jem.DefaultOptions())
	if err != nil {
		panic(err)
	}
	for _, m := range mapAll(mapper, []jem.Record{read}) {
		fmt.Printf("%s %s -> %s\n", m.ReadID, m.End, m.ContigID)
	}
	// Output:
	// read_1 prefix -> contig_a
	// read_1 suffix -> contig_b
}

// ExampleMapper_MapSegment maps one ad-hoc segment.
func ExampleMapper_MapSegment() {
	genome := deterministicDNA(11, 8000)
	contigs := []jem.Record{{ID: "only", Seq: genome}}
	mapper, err := jem.NewMapper(contigs, jem.DefaultOptions())
	if err != nil {
		panic(err)
	}
	contig, trials, ok := mapper.MapSegment(genome[2000:3000])
	fmt.Println(ok, contigs[contig].ID, trials)
	// 26 of the 30 trials collide: interior segments sit between the
	// subject's interval anchors, so a few trials pick boundary
	// minimizers the query's single interval does not contain.
	// Output:
	// true only 26
}

// ExampleBuildScaffolds links contigs through bridging reads.
func ExampleBuildScaffolds() {
	genome := deterministicDNA(13, 15_000)
	contigs := []jem.Record{
		{ID: "c0", Seq: genome[:5000]},
		{ID: "c1", Seq: genome[5000:10_000]},
		{ID: "c2", Seq: genome[10_000:]},
	}
	reads := []jem.Record{
		{ID: "r0", Seq: genome[3000:7000]},   // bridges c0-c1
		{ID: "r1", Seq: genome[8000:12_000]}, // bridges c1-c2
	}
	mapper, err := jem.NewMapper(contigs, jem.DefaultOptions())
	if err != nil {
		panic(err)
	}
	scaffolds := jem.BuildScaffolds(mapAll(mapper, reads), len(contigs), 1)
	for _, sc := range scaffolds {
		fmt.Println(len(sc.Contigs), "contigs chained")
	}
	// Output:
	// 3 contigs chained
}

// ExampleWriteTSV shows the interchange format.
func ExampleWriteTSV() {
	mappings := []jem.Mapping{
		{ReadID: "r1", End: jem.PrefixEnd, Mapped: true, ContigID: "c7", SharedTrials: 28},
		{ReadID: "r1", End: jem.SuffixEnd},
	}
	if err := jem.WriteTSV(os.Stdout, mappings); err != nil {
		panic(err)
	}
	// Output:
	// read_id	end	contig_id	shared_trials
	// r1	prefix	c7	28
	// r1	suffix	*	0
}

// ExampleOpen shows the one front door for construction: build from
// contigs, persist, then reopen from the index file with a
// rebuild-on-corruption policy.
func ExampleOpen() {
	genome := deterministicDNA(17, 10_000)
	contigs := []jem.Record{
		{ID: "c0", Seq: genome[:5000]},
		{ID: "c1", Seq: genome[5000:]},
	}
	dir, err := os.MkdirTemp("", "jem-example")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	idx := dir + "/jem.idx"

	// First run: no index on the given path yet, so Open builds from
	// the contigs; persist the result for next time.
	mapper, info, err := jem.Open(jem.OpenOptions{Contigs: contigs, Options: jem.DefaultOptions()})
	if err != nil {
		panic(err)
	}
	fmt.Println("from index:", info.FromIndex)
	if err := mapper.SaveIndexFile(idx); err != nil {
		panic(err)
	}

	// Later runs: load the index; RebuildOnCorrupt falls back to the
	// contigs if the file fails its checksum.
	mapper, info, err = jem.Open(jem.OpenOptions{
		Contigs:          contigs,
		IndexPath:        idx,
		RebuildOnCorrupt: true,
		Options:          jem.DefaultOptions(),
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("from index:", info.FromIndex, "rebuilt:", info.Rebuilt)
	read := jem.Record{ID: "r", Seq: genome[3000:8000]}
	for _, m := range mapAll(mapper, []jem.Record{read}) {
		fmt.Printf("%s %s -> %s\n", m.ReadID, m.End, m.ContigID)
	}
	// Output:
	// from index: false
	// from index: true rebuilt: false
	// r prefix -> c0
	// r suffix -> c1
}

// ExampleOptions_sharded serves the same index from four shards;
// results are byte-identical to the unsharded mapper by construction.
func ExampleOptions_sharded() {
	genome := deterministicDNA(19, 12_000)
	contigs := []jem.Record{
		{ID: "left", Seq: genome[:6000]},
		{ID: "right", Seq: genome[6000:]},
	}
	opts := jem.DefaultOptions()
	opts.Shards = 4
	mapper, _, err := jem.Open(jem.OpenOptions{Contigs: contigs, Options: opts})
	if err != nil {
		panic(err)
	}
	fmt.Println("shards:", mapper.Shards())
	read := jem.Record{ID: "r", Seq: genome[4000:9000]}
	for _, m := range mapAll(mapper, []jem.Record{read}) {
		fmt.Printf("%s %s -> %s\n", m.ReadID, m.End, m.ContigID)
	}
	// Output:
	// shards: 4
	// r prefix -> left
	// r suffix -> right
}
