package jem_test

import (
	"bufio"
	"bytes"
	"context"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro"
)

// shardProc is one jem-shardd subprocess plus its scraped address.
type shardProc struct {
	cmd  *exec.Cmd
	addr string
}

// startShardd launches a jem-shardd subprocess and scrapes the
// "listening <addr>" line it prints once bound. extraEnv entries are
// appended to the inherited environment (for JEM_FAULTS injection).
func startShardd(t *testing.T, bin, index, shards, listen string, extraEnv ...string) *shardProc {
	t.Helper()
	cmd := exec.Command(bin, "-index", index, "-shards", shards, "-listen", listen)
	cmd.Env = append(os.Environ(), extraEnv...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = cmd.Process.Kill()
		_, _ = cmd.Process.Wait()
	})
	sc := bufio.NewScanner(stdout)
	addrc := make(chan string, 1)
	go func() {
		defer close(addrc)
		for sc.Scan() {
			if rest, ok := strings.CutPrefix(sc.Text(), "listening "); ok {
				addrc <- rest
				break
			}
		}
	}()
	select {
	case addr, ok := <-addrc:
		if !ok {
			t.Fatalf("jem-shardd exited before printing its address")
		}
		return &shardProc{cmd: cmd, addr: addr}
	case <-time.After(30 * time.Second):
		t.Fatalf("jem-shardd did not print its address in time")
		return nil
	}
}

// TestDistE2EMultiProcess is the multi-process end-to-end: real
// jem-shardd server processes, a real index file, and the full facade
// client.
//
//   - Healthy fleet: remote output byte-identical to local serving.
//   - One server armed with the shard.down fault (its process drops
//     the connection mid-query without replying — a crash at the worst
//     moment): the stream completes degraded, naming the dead server's
//     shards in Stats.ShardsLost.
//   - One server process actually killed: same degraded completion on
//     a live mapper whose pools must discover the corpse.
func TestDistE2EMultiProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process E2E is not a -short test")
	}
	bin := filepath.Join(t.TempDir(), "jem-shardd")
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/jem-shardd").CombinedOutput(); err != nil {
		t.Fatalf("building jem-shardd: %v\n%s", err, out)
	}

	ds, reads := distWorld(t)
	opts := jem.DefaultOptions()
	opts.Shards = 4
	local, err := jem.NewMapper(ds.Contigs, opts)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	idx := filepath.Join(dir, "idx.jem")
	if err := local.SaveIndexFile(idx); err != nil {
		t.Fatal(err)
	}
	var localTSV bytes.Buffer
	localStats, err := local.Stream(context.Background(), bytes.NewReader(reads), &localTSV, jem.StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}

	sock := func(name string) string { return "unix:" + filepath.Join(dir, name) }
	a := startShardd(t, bin, idx, "0,1", sock("a.sock"))
	b := startShardd(t, bin, idx, "2-3", sock("b.sock"))

	t.Run("healthy identity", func(t *testing.T) {
		remote, info, err := jem.Open(jem.OpenOptions{IndexPath: idx, ShardServers: []string{a.addr, b.addr}})
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = remote.Close() }()
		if !info.Remote {
			t.Fatalf("OpenInfo = %+v, want Remote", info)
		}
		var tsv bytes.Buffer
		stats, err := remote.Stream(context.Background(), bytes.NewReader(reads), &tsv, jem.StreamOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(tsv.Bytes(), localTSV.Bytes()) {
			t.Fatalf("remote TSV differs from local (%d vs %d bytes)", tsv.Len(), localTSV.Len())
		}
		if stats.PostingsScanned != localStats.PostingsScanned {
			t.Fatalf("postings scanned %d remote != %d local", stats.PostingsScanned, localStats.PostingsScanned)
		}
		if stats.ShardsLost != nil {
			t.Fatalf("healthy fleet lost shards %v", stats.ShardsLost)
		}
	})

	t.Run("shard.down mid-query", func(t *testing.T) {
		// A replacement for server B whose process drops every query
		// connection after reading the request — the wire-level signature
		// of a process crashing mid-query. The handshake is unaffected,
		// so Open succeeds and the loss is discovered under load.
		bDown := startShardd(t, bin, idx, "2-3", sock("b-down.sock"), "JEM_FAULTS=shard.down")
		remote, _, err := jem.Open(jem.OpenOptions{IndexPath: idx, ShardServers: []string{a.addr, bDown.addr}})
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = remote.Close() }()
		var tsv bytes.Buffer
		stats, err := remote.Stream(context.Background(), bytes.NewReader(reads), &tsv, jem.StreamOptions{})
		if err != nil {
			t.Fatalf("degraded stream errored: %v", err)
		}
		assertLostWithinB(t, stats)
		if got, want := bytes.Count(tsv.Bytes(), []byte{'\n'}), bytes.Count(localTSV.Bytes(), []byte{'\n'}); got != want {
			t.Fatalf("degraded run emitted %d lines, want %d", got, want)
		}
	})

	t.Run("process killed", func(t *testing.T) {
		remote, _, err := jem.Open(jem.OpenOptions{IndexPath: idx, ShardServers: []string{a.addr, b.addr}})
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = remote.Close() }()
		if err := b.cmd.Process.Kill(); err != nil {
			t.Fatal(err)
		}
		_, _ = b.cmd.Process.Wait()
		var tsv bytes.Buffer
		stats, err := remote.Stream(context.Background(), bytes.NewReader(reads), &tsv, jem.StreamOptions{})
		if err != nil {
			t.Fatalf("post-kill stream errored: %v", err)
		}
		assertLostWithinB(t, stats)
	})
}

// assertLostWithinB checks a degraded run lost at least one shard and
// only shards owned by server B (shards 2 and 3).
func assertLostWithinB(t *testing.T, stats jem.Stats) {
	t.Helper()
	if len(stats.ShardsLost) == 0 {
		t.Fatal("no shards recorded lost")
	}
	for _, sd := range stats.ShardsLost {
		if sd != 2 && sd != 3 {
			t.Fatalf("lost shard %d is not owned by server B (ShardsLost %v)", sd, stats.ShardsLost)
		}
	}
}
