package jem_test

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"repro"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/shardnet"
)

// startShardFleet carves the index at path into nServers in-process
// shard servers on unix sockets (server i owns the shards ≡ i mod
// nServers) and returns their dial addresses plus per-server shard
// ownership. Servers are torn down with the test; killServer shuts
// one down early.
func startShardFleet(t *testing.T, indexPath string, nServers int) (addrs []string, owned [][]int, kill func(i int)) {
	t.Helper()
	dir := t.TempDir()
	servers := make([]*shardnet.Server, nServers)
	for i := 0; i < nServers; i++ {
		i := i
		tables, meta, err := core.ReadShardSubsetFile(indexPath, func(sd int) bool { return sd%nServers == i })
		if err != nil {
			t.Fatalf("server %d subset load: %v", i, err)
		}
		srv, err := shardnet.NewServer(tables, shardnet.Info{
			Shards:      meta.Shards,
			T:           meta.T,
			NumSubjects: meta.NumSubjects,
			ManifestCRC: meta.ManifestCRC,
		})
		if err != nil {
			t.Fatal(err)
		}
		ln, err := net.Listen("unix", filepath.Join(dir, fmt.Sprintf("s%d.sock", i)))
		if err != nil {
			t.Fatal(err)
		}
		srv.Start(ln)
		servers[i] = srv
		t.Cleanup(func() { _ = srv.Close() })
		addrs = append(addrs, "unix:"+ln.Addr().String())
		owned = append(owned, srv.Owned())
	}
	return addrs, owned, func(i int) { _ = servers[i].Close() }
}

// distWorld builds the shared dataset once and serializes its reads.
func distWorld(t *testing.T) (*jem.Dataset, []byte) {
	t.Helper()
	ds := buildSmallDataset(t)
	var reads bytes.Buffer
	if err := writeFASTQ(&reads, ds.Reads); err != nil {
		t.Fatal(err)
	}
	return ds, reads.Bytes()
}

// TestOpenShardServersByteIdentity is the tentpole property: a healthy
// shard-server fleet is indistinguishable from the local sharded
// backend — identical TSV bytes and identical PostingsScanned — at
// several shard counts and fleet sizes. (Shard count 1 cannot reach
// the JEMIDX05 layout through the facade; the core-level remote tests
// cover it.)
func TestOpenShardServersByteIdentity(t *testing.T) {
	ds, reads := distWorld(t)
	for _, p := range []int{2, 4, 8} {
		opts := jem.DefaultOptions()
		opts.Shards = p
		local, err := jem.NewMapper(ds.Contigs, opts)
		if err != nil {
			t.Fatal(err)
		}
		idx := filepath.Join(t.TempDir(), "idx.jem")
		if err := local.SaveIndexFile(idx); err != nil {
			t.Fatal(err)
		}
		addrs, _, _ := startShardFleet(t, idx, p/2) // 1-, 2- and 4-server fleets
		remote, info, err := jem.Open(jem.OpenOptions{IndexPath: idx, ShardServers: addrs})
		if err != nil {
			t.Fatalf("p=%d: Open: %v", p, err)
		}
		defer func() { _ = remote.Close() }()
		if !info.Remote || !info.FromIndex {
			t.Fatalf("p=%d: OpenInfo = %+v, want Remote+FromIndex", p, info)
		}
		var tsvL, tsvR bytes.Buffer
		statsL, err := local.Stream(context.Background(), bytes.NewReader(reads), &tsvL, jem.StreamOptions{})
		if err != nil {
			t.Fatal(err)
		}
		statsR, err := remote.Stream(context.Background(), bytes.NewReader(reads), &tsvR, jem.StreamOptions{})
		if err != nil {
			t.Fatalf("p=%d: remote stream: %v", p, err)
		}
		if !bytes.Equal(tsvL.Bytes(), tsvR.Bytes()) {
			t.Fatalf("p=%d: remote TSV differs from local (%d vs %d bytes)", p, tsvR.Len(), tsvL.Len())
		}
		if statsL.PostingsScanned != statsR.PostingsScanned {
			t.Fatalf("p=%d: postings scanned %d local != %d remote", p, statsL.PostingsScanned, statsR.PostingsScanned)
		}
		if statsR.ShardsLost != nil {
			t.Fatalf("p=%d: healthy fleet lost shards %v", p, statsR.ShardsLost)
		}
	}
}

// TestOpenShardServersDegradedAnswer: killing one server of a live
// fleet turns its shards into degraded answers — the stream still
// completes, emits a row for every segment, and names exactly the
// dead server's shards in Stats.ShardsLost.
func TestOpenShardServersDegradedAnswer(t *testing.T) {
	ds, reads := distWorld(t)
	opts := jem.DefaultOptions()
	opts.Shards = 4
	local, err := jem.NewMapper(ds.Contigs, opts)
	if err != nil {
		t.Fatal(err)
	}
	idx := filepath.Join(t.TempDir(), "idx.jem")
	if err := local.SaveIndexFile(idx); err != nil {
		t.Fatal(err)
	}
	addrs, owned, kill := startShardFleet(t, idx, 2)
	remote, _, err := jem.Open(jem.OpenOptions{IndexPath: idx, ShardServers: addrs})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = remote.Close() }()

	var healthy bytes.Buffer
	if _, err := remote.Stream(context.Background(), bytes.NewReader(reads), &healthy, jem.StreamOptions{}); err != nil {
		t.Fatal(err)
	}

	kill(1)
	var degraded bytes.Buffer
	stats, err := remote.Stream(context.Background(), bytes.NewReader(reads), &degraded, jem.StreamOptions{})
	if err != nil {
		t.Fatalf("degraded stream errored: %v", err)
	}
	if len(stats.ShardsLost) == 0 {
		t.Fatal("dead server produced no lost shards")
	}
	dead := make(map[int]bool)
	for _, sd := range owned[1] {
		dead[sd] = true
	}
	for _, sd := range stats.ShardsLost {
		if !dead[sd] {
			t.Fatalf("lost shard %d is not owned by the killed server (owned %v)", sd, owned[1])
		}
	}
	// Every segment still produced a row: line counts match the healthy
	// run even though some rows carry degraded mappings.
	if hl, dl := bytes.Count(healthy.Bytes(), []byte{'\n'}), bytes.Count(degraded.Bytes(), []byte{'\n'}); hl != dl {
		t.Fatalf("degraded run emitted %d lines, healthy emitted %d", dl, hl)
	}
}

// TestServeShardsLostHeader: the serving tier surfaces a degraded
// answer as the X-JEM-Shards-Lost header while still returning 200
// and the full row set.
func TestServeShardsLostHeader(t *testing.T) {
	ds, reads := distWorld(t)
	opts := jem.DefaultOptions()
	opts.Shards = 4
	local, err := jem.NewMapper(ds.Contigs, opts)
	if err != nil {
		t.Fatal(err)
	}
	idx := filepath.Join(t.TempDir(), "idx.jem")
	if err := local.SaveIndexFile(idx); err != nil {
		t.Fatal(err)
	}
	addrs, _, kill := startShardFleet(t, idx, 2)
	reg := obs.NewRegistry()
	remote, _, err := jem.Open(jem.OpenOptions{
		IndexPath:    idx,
		ShardServers: addrs,
		Options:      jem.Options{Metrics: reg},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = remote.Close() }()
	s := serve.New(serve.Config{Registry: reg})
	s.AddIndex("asm", remote)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/map/asm", "application/octet-stream", bytes.NewReader(reads))
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("healthy request status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-JEM-Shards-Lost"); got != "" {
		t.Fatalf("healthy request carries X-JEM-Shards-Lost %q", got)
	}

	kill(1)
	resp, err = http.Post(ts.URL+"/v1/map/asm", "application/octet-stream", bytes.NewReader(reads))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("degraded request status %d, want 200", resp.StatusCode)
	}
	if got := resp.Header.Get("X-JEM-Shards-Lost"); got == "" {
		t.Fatal("degraded request missing X-JEM-Shards-Lost header")
	}
}

// TestOpenShardServersFingerprintMismatch: a fleet serving a different
// index than the local manifest is refused at Open, before any query.
func TestOpenShardServersFingerprintMismatch(t *testing.T) {
	ds, _ := distWorld(t)
	opts := jem.DefaultOptions()
	opts.Shards = 2
	m1, err := jem.NewMapper(ds.Contigs, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Same world, different seed → different index fingerprint.
	opts2 := opts
	opts2.Seed = 99
	m2, err := jem.NewMapper(ds.Contigs, opts2)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	idx1, idx2 := filepath.Join(dir, "a.jem"), filepath.Join(dir, "b.jem")
	if err := m1.SaveIndexFile(idx1); err != nil {
		t.Fatal(err)
	}
	if err := m2.SaveIndexFile(idx2); err != nil {
		t.Fatal(err)
	}
	addrs, _, _ := startShardFleet(t, idx2, 1)
	if _, _, err := jem.Open(jem.OpenOptions{IndexPath: idx1, ShardServers: addrs}); err == nil {
		t.Fatal("Open accepted a fleet serving a different index")
	}
	if _, _, err := jem.Open(jem.OpenOptions{ShardServers: addrs}); err == nil {
		t.Fatal("Open accepted ShardServers without IndexPath")
	}
}
