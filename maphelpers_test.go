package jem_test

import (
	"context"
	"io"

	"repro"
)

// mapAll and streamAll are the test-side shims for the removed
// MapReads/MapStream compatibility wrappers: the canonical Map/Stream
// entry points under a background context with zero options. A local
// heap-resident mapper cannot fail under a background context, so the
// panic is unreachable in the tests that use these.

func mapAll(m *jem.Mapper, reads []jem.Record) []jem.Mapping {
	mappings, err := m.Map(context.Background(), reads, jem.MapOptions{})
	if err != nil {
		panic(err)
	}
	return mappings
}

func streamAll(m *jem.Mapper, r io.Reader, w io.Writer) (jem.Stats, error) {
	return m.Stream(context.Background(), r, w, jem.StreamOptions{})
}
