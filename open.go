package jem

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/minimizer"
	"repro/internal/obs"
	"repro/internal/shardnet"
)

// OpenOptions configures Open, the unified construction entry point
// that subsumes NewMapper (build from contigs), LoadMapper (load a
// saved index) and the load-or-rebuild fallback that CLI callers used
// to hand-roll.
type OpenOptions struct {
	// Contigs is the subject set: the build source when no index is
	// loaded, the rebuild source for the corrupt-index fallback, and
	// otherwise the record metadata backing sequence-dependent extras
	// on a loaded index (nil disables only those extras).
	Contigs []Record
	// IndexPath, when non-empty, loads the mapper from this index file
	// instead of sketching Contigs.
	IndexPath string
	// RebuildOnCorrupt falls back to building from Contigs when the
	// file at IndexPath fails its checksum verification
	// (ErrIndexChecksum) — on-disk corruption of a once-valid index.
	// Other load errors (missing file, unknown format) are returned
	// as-is, and the fallback requires Contigs.
	RebuildOnCorrupt bool
	// ShardServers, when non-empty, serves queries from a fleet of
	// shard-server processes (jem-shardd) at these addresses
	// ("host:port" for TCP, "unix:/path" for unix sockets) instead of
	// loading shard payloads locally. Requires IndexPath: only the
	// index manifest is read here (sketch parameters, subject
	// metadata, fleet fingerprint); the postings live in the servers.
	// The fleet must collectively own every shard of that exact index
	// — a fingerprint or coverage mismatch fails Open. See
	// docs/DISTRIBUTED.md. Mutually exclusive with RebuildOnCorrupt
	// (there is no local table to rebuild into).
	ShardServers []string
	// Options configures the build and rebuild paths and supplies the
	// serving knobs. A loaded index carries its own sketch parameters,
	// which override the corresponding fields; Workers, TileStride and
	// Metrics apply either way.
	Options Options
}

// OpenInfo reports which construction path Open took.
type OpenInfo struct {
	// FromIndex is true when the mapper was loaded from IndexPath.
	FromIndex bool
	// Rebuilt is true when the index at IndexPath was corrupt and the
	// mapper was rebuilt from Contigs instead (RebuildOnCorrupt).
	Rebuilt bool
	// Remote is true when the mapper serves through a shard-server
	// fleet (ShardServers) rather than local tables.
	Remote bool
	// IndexErr is the load error that triggered the rebuild, nil unless
	// Rebuilt. Callers typically surface it as a warning: the corrupt
	// file still exists and should not be served or trusted.
	IndexErr error
	// Memory reports what the open did with memory: the per-shard
	// residency and the open-time resident/mapped byte split (see
	// Options.Memory). Builds, rebuilds and pre-JEMIDX06 loads report
	// MemoryHeap; a remote mapper reports no local shards.
	Memory MemoryInfo
}

// Open constructs a Mapper by whichever path the options select:
//
//   - IndexPath == "": build from Contigs (NewMapper).
//   - IndexPath set: load the saved index; Contigs, if given, supply
//     record metadata the index does not store.
//   - IndexPath set + RebuildOnCorrupt: as above, but a checksum
//     failure falls back to building from Contigs, reported in
//     OpenInfo rather than as an error.
//
// The returned OpenInfo says which path ran. Open validates
// Options for the build paths (NewMapper does), and returns typed
// *OptionError values wrapping ErrInvalidOptions on bad options.
func Open(opts OpenOptions) (*Mapper, OpenInfo, error) {
	var info OpenInfo
	if len(opts.ShardServers) > 0 {
		if opts.IndexPath == "" {
			return nil, info, fmt.Errorf("jem: ShardServers needs IndexPath (the manifest carries the sketch parameters and the fleet fingerprint)")
		}
		if opts.RebuildOnCorrupt {
			return nil, info, fmt.Errorf("jem: ShardServers is incompatible with RebuildOnCorrupt (remote serving has no local table to rebuild)")
		}
		m, err := openRemote(opts)
		if err != nil {
			return nil, info, err
		}
		info.FromIndex = true
		info.Remote = true
		info.Memory = heapMemoryInfo(m)
		return m, info, nil
	}
	if opts.IndexPath != "" {
		// The build paths validate the full Options inside NewMapper; a
		// pure load takes its sketch parameters from the index, so only
		// the serving-side Memory spec needs checking here.
		if err := opts.Options.Memory.validate(); err != nil {
			return nil, info, err
		}
		m, mem, err := openIndexFile(opts)
		if err == nil {
			info.FromIndex = true
			info.Memory = mem
			return m, info, nil
		}
		if !opts.RebuildOnCorrupt || opts.Contigs == nil || !errors.Is(err, ErrIndexChecksum) {
			return nil, info, err
		}
		info.Rebuilt = true
		info.IndexErr = err
	} else if opts.Contigs == nil {
		return nil, info, fmt.Errorf("jem: Open needs Contigs, an IndexPath, or both")
	}
	m, err := NewMapper(opts.Contigs, opts.Options)
	if err != nil {
		return nil, OpenInfo{}, err
	}
	info.Memory = heapMemoryInfo(m)
	return m, info, nil
}

// openRemote wires a meta-only mapper to a shard-server fleet: read
// the local manifest (parameters, subjects, fingerprint), dial and
// handshake every server, verify the fleet serves the same index the
// manifest describes, and install the coordinator as the mapper's
// serving backend. The returned mapper owns the coordinator's
// connection pools; release them with Mapper.Close.
//
// and the dial budget is bounded by the coordinator's DialTimeout
//
//jem:detached construction-time dial: Open predates context threading,
func openRemote(opts OpenOptions) (*Mapper, error) {
	reg := opts.Options.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	cm, meta, err := core.ReadIndexMetaFile(opts.IndexPath)
	if err != nil {
		return nil, fmt.Errorf("jem: index %s: %w", opts.IndexPath, err)
	}
	coord, err := shardnet.Dial(context.Background(), opts.ShardServers, shardnet.Config{}, reg)
	if err != nil {
		return nil, fmt.Errorf("jem: dialing shard servers: %w", err)
	}
	fi := coord.Info()
	if fi.Shards != meta.Shards || fi.T != meta.T ||
		fi.NumSubjects != meta.NumSubjects || fi.ManifestCRC != meta.ManifestCRC {
		_ = coord.Close()
		return nil, fmt.Errorf(
			"jem: shard fleet serves a different index than %s: fleet has %d shards, T=%d, %d subjects, manifest %08x; manifest says %d shards, T=%d, %d subjects, %08x",
			opts.IndexPath, fi.Shards, fi.T, fi.NumSubjects, fi.ManifestCRC,
			meta.Shards, meta.T, meta.NumSubjects, meta.ManifestCRC)
	}
	cm.SetRemote(coord)
	met := newMapperMetrics(reg, cm)
	p := cm.Sketcher().Params()
	o := Options{
		K: p.K, W: p.W, Trials: p.T, SegmentLen: p.L, Seed: p.Seed,
		HashOrdering: p.Order == minimizer.OrderHash,
		Metrics:      reg,
		Workers:      opts.Options.Workers,
		TileStride:   opts.Options.TileStride,
	}
	if meta.Shards > 1 {
		o.Shards = meta.Shards
	}
	return &Mapper{opts: o, core: cm, contigs: opts.Contigs, reg: reg, met: met, closer: coord}, nil
}

// openIndexFile loads the index file honoring the Memory spec and
// adopts the caller's serving knobs (the index stores sketch
// parameters, not serving preferences). A JEMIDX06 file under
// MemoryMMap or MemoryAuto is served from a read-only file mapping
// (owned by the returned mapper — released by Mapper.Close); anything
// else decodes onto the heap.
func openIndexFile(opts OpenOptions) (*Mapper, MemoryInfo, error) {
	reg := opts.Options.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	sp := reg.Tracer().Start("index.load")
	rd := sp.Child("read")
	cm, ci, closer, err := core.OpenIndexFileObserved(opts.IndexPath, opts.Options.Memory.spec(), rd)
	rd.End()
	if err != nil {
		sp.End()
		return nil, MemoryInfo{}, fmt.Errorf("jem: loading index: %w", err)
	}
	// Mapped loads arrive sealed; legacy mutable-table formats freeze
	// here so serving always takes the frozen path.
	sp.Time("freeze", func() { cm.Seal() })
	sp.End()
	met := newMapperMetrics(reg, cm)
	p := cm.Sketcher().Params()
	o := Options{
		K: p.K, W: p.W, Trials: p.T, SegmentLen: p.L, Seed: p.Seed,
		HashOrdering: p.Order == minimizer.OrderHash,
		Metrics:      reg,
		Workers:      opts.Options.Workers,
		TileStride:   opts.Options.TileStride,
		Memory:       opts.Options.Memory,
	}
	if sh := cm.Shards(); sh > 1 {
		o.Shards = sh
	}
	m := &Mapper{opts: o, core: cm, contigs: opts.Contigs, reg: reg, met: met, closer: closer}
	return m, memInfoFromCore(opts.Options.Memory.Mode, ci), nil
}
