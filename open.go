package jem

import (
	"errors"
	"fmt"
	"os"
)

// OpenOptions configures Open, the unified construction entry point
// that subsumes NewMapper (build from contigs), LoadMapper (load a
// saved index) and the load-or-rebuild fallback that CLI callers used
// to hand-roll.
type OpenOptions struct {
	// Contigs is the subject set: the build source when no index is
	// loaded, the rebuild source for the corrupt-index fallback, and
	// otherwise the record metadata backing sequence-dependent extras
	// on a loaded index (nil disables only those extras).
	Contigs []Record
	// IndexPath, when non-empty, loads the mapper from this index file
	// instead of sketching Contigs.
	IndexPath string
	// RebuildOnCorrupt falls back to building from Contigs when the
	// file at IndexPath fails its checksum verification
	// (ErrIndexChecksum) — on-disk corruption of a once-valid index.
	// Other load errors (missing file, unknown format) are returned
	// as-is, and the fallback requires Contigs.
	RebuildOnCorrupt bool
	// Options configures the build and rebuild paths and supplies the
	// serving knobs. A loaded index carries its own sketch parameters,
	// which override the corresponding fields; Workers, TileStride and
	// Metrics apply either way.
	Options Options
}

// OpenInfo reports which construction path Open took.
type OpenInfo struct {
	// FromIndex is true when the mapper was loaded from IndexPath.
	FromIndex bool
	// Rebuilt is true when the index at IndexPath was corrupt and the
	// mapper was rebuilt from Contigs instead (RebuildOnCorrupt).
	Rebuilt bool
	// IndexErr is the load error that triggered the rebuild, nil unless
	// Rebuilt. Callers typically surface it as a warning: the corrupt
	// file still exists and should not be served or trusted.
	IndexErr error
}

// Open constructs a Mapper by whichever path the options select:
//
//   - IndexPath == "": build from Contigs (NewMapper).
//   - IndexPath set: load the saved index; Contigs, if given, supply
//     record metadata the index does not store.
//   - IndexPath set + RebuildOnCorrupt: as above, but a checksum
//     failure falls back to building from Contigs, reported in
//     OpenInfo rather than as an error.
//
// The returned OpenInfo says which path ran. Open validates
// Options for the build paths (NewMapper does), and returns typed
// *OptionError values wrapping ErrInvalidOptions on bad options.
func Open(opts OpenOptions) (*Mapper, OpenInfo, error) {
	var info OpenInfo
	if opts.IndexPath != "" {
		m, err := openIndexFile(opts)
		if err == nil {
			info.FromIndex = true
			return m, info, nil
		}
		if !opts.RebuildOnCorrupt || opts.Contigs == nil || !errors.Is(err, ErrIndexChecksum) {
			return nil, info, err
		}
		info.Rebuilt = true
		info.IndexErr = err
	} else if opts.Contigs == nil {
		return nil, info, fmt.Errorf("jem: Open needs Contigs, an IndexPath, or both")
	}
	m, err := NewMapper(opts.Contigs, opts.Options)
	if err != nil {
		return nil, OpenInfo{}, err
	}
	return m, info, nil
}

// openIndexFile loads the index file and adopts the caller's serving
// knobs (the index stores sketch parameters, not serving preferences).
func openIndexFile(opts OpenOptions) (*Mapper, error) {
	f, err := os.Open(opts.IndexPath)
	if err != nil {
		return nil, err
	}
	defer f.Close() // read-only handle; decode errors carry the signal
	m, err := LoadMapperObserved(f, opts.Contigs, opts.Options.Metrics)
	if err != nil {
		return nil, fmt.Errorf("jem: index %s: %w", opts.IndexPath, err)
	}
	m.opts.Workers = opts.Options.Workers
	m.opts.TileStride = opts.Options.TileStride
	return m, nil
}
