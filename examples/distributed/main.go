// Distributed: run JEM-mapper's S1-S4 distributed-memory algorithm on
// simulated MPI ranks, print the per-step timeline and show strong
// scaling plus the computation/communication split, mirroring the
// paper's Table II and Fig. 8 methodology.
//
//	go run ./examples/distributed
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	ds, err := jem.Synthesize(jem.SynthesisConfig{
		Name:           "distributed",
		GenomeLength:   1_000_000,
		RepeatFraction: 0.15,
		Seed:           31,
	})
	if err != nil {
		log.Fatal(err)
	}
	opts := jem.DefaultOptions()
	fmt.Printf("dataset: %d contigs, %d reads\n\n", len(ds.Contigs), len(ds.Reads))

	var base time.Duration
	fmt.Printf("%4s %12s %10s %10s %14s\n", "p", "total(sim)", "speedup", "comm %", "throughput")
	for _, p := range []int{1, 2, 4, 8, 16} {
		out, err := jem.MapDistributed(ds.Contigs, ds.Reads, p, opts)
		if err != nil {
			log.Fatal(err)
		}
		if p == 1 {
			base = out.Total
		}
		speedup := float64(base) / float64(out.Total)
		fmt.Printf("%4d %12v %9.2fx %9.1f%% %11.0f q/s\n",
			p, out.Total.Round(time.Millisecond), speedup, 100*out.CommFraction, out.Throughput)
	}

	// Per-step breakdown at p=8 (the Fig. 7a view).
	out, err := jem.MapDistributed(ds.Contigs, ds.Reads, 8, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nstep breakdown at p=8:")
	for _, st := range out.Steps {
		kind := "compute"
		if st.Communication {
			kind = "comm"
		}
		fmt.Printf("  %-22s %-8s %v\n", st.Name, kind, st.Duration.Round(time.Microsecond))
	}

	// The distributed result is identical to the shared-memory one.
	mapper, err := jem.NewMapper(ds.Contigs, opts)
	if err != nil {
		log.Fatal(err)
	}
	shared, err := mapper.Map(context.Background(), ds.Reads, jem.MapOptions{})
	if err != nil {
		log.Fatal(err)
	}
	same := len(shared) == len(out.Mappings)
	for i := 0; same && i < len(shared); i++ {
		if shared[i] != out.Mappings[i] {
			same = false
		}
	}
	fmt.Printf("\ndistributed result identical to shared-memory result: %v\n", same)
}
