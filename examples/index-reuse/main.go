// Index reuse: build the JEM sketch index once, persist it, and map
// several read batches against the reloaded index — the workflow for
// mapping many sequencing runs against one draft assembly. Also shows
// the streaming mapper, which bounds memory on large FASTQ inputs.
//
//	go run ./examples/index-reuse
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro"
)

func main() {
	ds, err := jem.Synthesize(jem.SynthesisConfig{
		Name:           "reuse",
		GenomeLength:   400_000,
		RepeatFraction: 0.10,
		Seed:           61,
	})
	if err != nil {
		log.Fatal(err)
	}
	opts := jem.DefaultOptions()

	// Build once, save.
	mapper, err := jem.NewMapper(ds.Contigs, opts)
	if err != nil {
		log.Fatal(err)
	}
	dir, err := os.MkdirTemp("", "jem-index")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	idxPath := filepath.Join(dir, "assembly.jemidx")
	f, err := os.Create(idxPath)
	if err != nil {
		log.Fatal(err)
	}
	if err := mapper.SaveIndex(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	info, _ := os.Stat(idxPath)
	fmt.Printf("index: %d contigs, %d bytes on disk\n", mapper.NumContigs(), info.Size())

	// Reload and map two "runs" (halves of the read set).
	f2, err := os.Open(idxPath)
	if err != nil {
		log.Fatal(err)
	}
	loaded, err := jem.LoadMapper(f2, ds.Contigs)
	_ = f2.Close() // read-only; decode errors carry the signal
	if err != nil {
		log.Fatal(err)
	}
	half := len(ds.Reads) / 2
	for run, batch := range [][]jem.Record{ds.Reads[:half], ds.Reads[half:]} {
		mapped := 0
		batchMappings, err := loaded.Map(context.Background(), batch, jem.MapOptions{})
		if err != nil {
			log.Fatal(err)
		}
		for _, m := range batchMappings {
			if m.Mapped {
				mapped++
			}
		}
		fmt.Printf("run %d: %d reads, %d segments mapped\n", run+1, len(batch), mapped)
	}

	// Streaming: pipe FASTQ through without loading it wholesale.
	var fastq bytes.Buffer
	if err := jem.WriteFASTQ(filepath.Join(dir, "reads.fastq"), ds.Reads); err != nil {
		log.Fatal(err)
	}
	rf, err := os.Open(filepath.Join(dir, "reads.fastq"))
	if err != nil {
		log.Fatal(err)
	}
	defer rf.Close()
	stats, err := loaded.Stream(context.Background(), rf, &fastq, jem.StreamOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("streamed: %d reads -> %d segments (%d mapped), %d TSV bytes\n",
		stats.Reads, stats.Segments, stats.Mapped, fastq.Len())
}
