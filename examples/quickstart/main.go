// Quickstart: synthesize a small hybrid dataset, map the long-read end
// segments to the contigs with JEM-mapper, and evaluate the mapping
// against ground truth.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"repro"
)

func main() {
	// 1. Synthesize a dataset: a 500 kbp genome, Illumina reads
	// assembled into contigs, and 10x HiFi long reads.
	ds, err := jem.Synthesize(jem.SynthesisConfig{
		Name:           "quickstart",
		GenomeLength:   500_000,
		RepeatFraction: 0.10,
		Seed:           7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %d contigs (N50 %d bp), %d long reads\n",
		len(ds.Contigs), ds.AssemblyStats.N50, len(ds.Reads))

	// 2. Index the contigs with the paper's default parameters
	// (k=16, w=100, T=30, l=1000).
	opts := jem.DefaultOptions()
	mapper, err := jem.NewMapper(ds.Contigs, opts)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Map both end segments of every long read.
	mappings, err := mapper.Map(context.Background(), ds.Reads, jem.MapOptions{})
	if err != nil {
		log.Fatal(err)
	}
	mapped := 0
	for _, m := range mappings {
		if m.Mapped {
			mapped++
		}
	}
	fmt.Printf("mapped %d/%d end segments\n", mapped, len(mappings))
	for _, m := range mappings[:min(5, len(mappings))] {
		if m.Mapped {
			fmt.Printf("  %s %s -> %s (shared trials %d)\n", m.ReadID, m.End, m.ContigID, m.SharedTrials)
		} else {
			fmt.Printf("  %s %s -> unmapped\n", m.ReadID, m.End)
		}
	}

	// 4. Score against the ground-truth benchmark (the reads carry
	// their true genome coordinates).
	bench, err := jem.BuildBenchmark(ds, opts)
	if err != nil {
		log.Fatal(err)
	}
	q := bench.Evaluate(mappings)
	fmt.Printf("precision %.4f, recall %.4f (TP=%d FP=%d FN=%d TN=%d)\n",
		q.Precision, q.Recall, q.TP, q.FP, q.FN, q.TN)

	// 5. Write the mapping as TSV, the on-disk interchange format.
	if err := jem.WriteTSV(os.Stdout, mappings[:min(3, len(mappings))]); err != nil {
		log.Fatal(err)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
