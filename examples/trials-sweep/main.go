// Trials sweep: the Fig. 6 experiment as library code. Sweeps the
// number of random trials T and compares the JEM interval sketch
// against classical whole-sequence MinHash, showing why the interval
// constraint lets JEM-mapper converge with far fewer trials.
//
//	go run ./examples/trials-sweep
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
)

func main() {
	ds, err := jem.Synthesize(jem.SynthesisConfig{
		Name:           "sweep",
		GenomeLength:   600_000,
		RepeatFraction: 0.25,
		Seed:           23,
	})
	if err != nil {
		log.Fatal(err)
	}
	base := jem.DefaultOptions()
	bench, err := jem.BuildBenchmark(ds, base)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%4s  %12s %12s  %12s %12s\n", "T", "JEM prec", "JEM recall", "MinHash prec", "MinHash recall")
	for _, T := range []int{5, 10, 20, 30, 50, 100} {
		opts := base
		opts.Trials = T

		mapper, err := jem.NewMapper(ds.Contigs, opts)
		if err != nil {
			log.Fatal(err)
		}
		sweepMappings, err := mapper.Map(context.Background(), ds.Reads, jem.MapOptions{})
		if err != nil {
			log.Fatal(err)
		}
		jq := bench.Evaluate(sweepMappings)

		mh, err := jem.NewMinHashMapper(ds.Contigs, opts)
		if err != nil {
			log.Fatal(err)
		}
		cq := bench.Evaluate(mh.MapReads(ds.Reads))

		fmt.Printf("%4d  %12.4f %12.4f  %12.4f %12.4f\n",
			T, jq.Precision, jq.Recall, cq.Precision, cq.Recall)
	}
	fmt.Println("\nJEM saturates by T~20-30; classical MinHash needs many times more trials.")
}
