// Scaffolding: the end-to-end hybrid workflow that motivates the
// paper. A draft short-read assembly is extended with long reads:
// reads whose two end segments map to different contigs witness
// contig adjacencies, and chaining those links yields scaffolds that
// span assembly gaps.
//
//	go run ./examples/scaffolding
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	"repro"
)

func main() {
	// A moderately repetitive genome fragments the short-read
	// assembly, which is exactly when scaffolding pays off.
	ds, err := jem.Synthesize(jem.SynthesisConfig{
		Name:           "scaffolding",
		GenomeLength:   800_000,
		RepeatFraction: 0.20,
		HiFiCoverage:   12,
		Seed:           11,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("draft assembly: %d contigs, N50 %d bp, %d bp total\n",
		len(ds.Contigs), ds.AssemblyStats.N50, ds.AssemblyStats.TotalBases)

	opts := jem.DefaultOptions()
	mapper, err := jem.NewMapper(ds.Contigs, opts)
	if err != nil {
		log.Fatal(err)
	}
	mappings, err := mapper.Map(context.Background(), ds.Reads, jem.MapOptions{})
	if err != nil {
		log.Fatal(err)
	}

	// Chain contigs through reads bridging two different contigs.
	// Requiring >=2 supporting reads suppresses chimeric links.
	scaffolds := jem.BuildScaffolds(mappings, len(ds.Contigs), 2)
	sort.Slice(scaffolds, func(i, j int) bool {
		return len(scaffolds[i].Contigs) > len(scaffolds[j].Contigs)
	})

	inChains := 0
	var longestSpan int64
	for _, sc := range scaffolds {
		inChains += len(sc.Contigs)
		var span int64
		for _, c := range sc.Contigs {
			span += int64(len(ds.Contigs[c].Seq))
		}
		if span > longestSpan {
			longestSpan = span
		}
	}
	fmt.Printf("scaffolds: %d chains covering %d contigs; longest spans %d bp\n",
		len(scaffolds), inChains, longestSpan)
	for i, sc := range scaffolds[:min(3, len(scaffolds))] {
		fmt.Printf("  scaffold %d: %d contigs:", i, len(sc.Contigs))
		for _, c := range sc.Contigs[:min(8, len(sc.Contigs))] {
			fmt.Printf(" %s", ds.Contigs[c].ID)
		}
		if len(sc.Contigs) > 8 {
			fmt.Printf(" ...")
		}
		fmt.Println()
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
