// Containment: the extension scenario the paper flags in §III-B.1 —
// when a contig is completely contained in a long read's interior,
// end-segment mapping cannot see it; tiling the whole read with
// ℓ-length segments recovers it. This example builds such a case
// explicitly and contrasts the two query modes, then shows PAF output
// with positional estimates.
//
//	go run ./examples/containment
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"os"

	"repro"
)

func randDNA(rng *rand.Rand, n int) []byte {
	bases := []byte("ACGT")
	s := make([]byte, n)
	for i := range s {
		s[i] = bases[rng.Intn(4)]
	}
	return s
}

func main() {
	rng := rand.New(rand.NewSource(99))

	// Three contigs; the middle one (2 kbp) will be fully contained in
	// the read's interior.
	left := randDNA(rng, 8000)
	mid := randDNA(rng, 2000)
	right := randDNA(rng, 8000)
	contigs := []jem.Record{
		{ID: "left", Seq: left},
		{ID: "contained", Seq: mid},
		{ID: "right", Seq: right},
	}
	// The read walks off the end of "left", through all of
	// "contained", into "right": 12 kbp total.
	read := append([]byte(nil), left[3000:]...)
	read = append(read, mid...)
	read = append(read, right[:5000]...)
	readRec := jem.Record{ID: "bridging_read", Seq: read}

	opts := jem.DefaultOptions()
	mapper, err := jem.NewMapper(contigs, opts)
	if err != nil {
		log.Fatal(err)
	}

	// 1. Classic end-segment mapping sees only the flanking contigs.
	fmt.Println("end-segment mapping:")
	endMappings, err := mapper.Map(context.Background(), []jem.Record{readRec}, jem.MapOptions{})
	if err != nil {
		log.Fatal(err)
	}
	for _, m := range endMappings {
		fmt.Printf("  %s %s -> %s (shared trials %d)\n", m.ReadID, m.End, m.ContigID, m.SharedTrials)
	}

	// 2. Tiled mapping walks the read interior and finds everything.
	fmt.Println("\ntiled mapping (stride = l/2):")
	for _, tm := range mapper.MapReadTiled(read, opts.SegmentLen/2) {
		fmt.Printf("  tile @%5d..%5d -> %s (shared trials %d)\n",
			tm.Offset, tm.Offset+tm.Length, tm.ContigID, tm.SharedTrials)
	}
	fmt.Println("\ncontigs contained in the read interior:")
	for _, c := range mapper.ContainedContigs(read) {
		fmt.Printf("  %s (%d bp)\n", contigs[c].ID, len(contigs[c].Seq))
	}

	// 3. PAF output with positional + strand estimates for the ends.
	fmt.Println("\nPAF (end segments, positional extension):")
	pms := mapper.MapReadsPositional([]jem.Record{readRec})
	if err := mapper.WritePAF(os.Stdout, pms, []jem.Record{readRec}); err != nil {
		log.Fatal(err)
	}
}
