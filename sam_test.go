package jem_test

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"repro"
)

func TestWriteSAM(t *testing.T) {
	ds := buildSmallDataset(t)
	opts := jem.DefaultOptions()
	mapper, err := jem.NewMapper(ds.Contigs, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Map a subset to keep the verification cost small.
	reads := ds.Reads[:30]
	vms := mapper.MapReadsVerified(reads, jem.VerifyOptions{})
	var buf bytes.Buffer
	if err := mapper.WriteSAM(&buf, vms, reads); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")

	// Header: @HD, one @SQ per contig, @PG.
	if !strings.HasPrefix(lines[0], "@HD\t") {
		t.Fatalf("first line %q", lines[0])
	}
	sq := 0
	body := 0
	contigLens := map[string]int{}
	for i := range ds.Contigs {
		contigLens[ds.Contigs[i].ID] = len(ds.Contigs[i].Seq)
	}
	revSeen := false
	for _, line := range lines {
		if strings.HasPrefix(line, "@SQ\t") {
			sq++
			continue
		}
		if strings.HasPrefix(line, "@") {
			continue
		}
		body++
		fields := strings.Split(line, "\t")
		if len(fields) < 11 {
			t.Fatalf("SAM record has %d fields: %q", len(fields), line)
		}
		flag, _ := strconv.Atoi(fields[1])
		if flag&0x4 != 0 {
			if fields[2] != "*" || fields[5] != "*" {
				t.Errorf("unmapped record with coordinates: %q", line)
			}
			continue
		}
		if flag&0x10 != 0 {
			revSeen = true
		}
		pos, _ := strconv.Atoi(fields[3])
		tlen := contigLens[fields[2]]
		if tlen == 0 {
			t.Fatalf("unknown RNAME %q", fields[2])
		}
		if pos < 1 || pos > tlen {
			t.Errorf("POS %d outside contig %s (len %d)", pos, fields[2], tlen)
		}
		// CIGAR query consumption must equal SEQ length.
		if fields[5] != "*" && fields[9] != "*" {
			if got := cigarQueryLen(t, fields[5]); got != len(fields[9]) {
				t.Errorf("CIGAR consumes %d query bases, SEQ is %d: %q", got, len(fields[9]), fields[5])
			}
		}
		mapq, _ := strconv.Atoi(fields[4])
		if mapq < 0 || mapq > 60 {
			t.Errorf("MAPQ %d", mapq)
		}
	}
	if sq != len(ds.Contigs) {
		t.Errorf("@SQ lines %d want %d", sq, len(ds.Contigs))
	}
	if body != len(vms) {
		t.Errorf("body records %d want %d", body, len(vms))
	}
	// The dataset samples both strands, so reverse records must occur.
	if !revSeen {
		t.Error("no reverse-strand SAM records")
	}
}

func cigarQueryLen(t *testing.T, cigar string) int {
	t.Helper()
	total, run := 0, 0
	for _, c := range cigar {
		if c >= '0' && c <= '9' {
			run = run*10 + int(c-'0')
			continue
		}
		switch c {
		case 'M', 'I', 'S', '=', 'X':
			total += run
		case 'D', 'N', 'H', 'P':
		default:
			t.Fatalf("bad CIGAR op %c in %q", c, cigar)
		}
		run = 0
	}
	return total
}
