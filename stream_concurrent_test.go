package jem_test

import (
	"bytes"
	"context"
	"math"
	"sync"
	"testing"

	"repro"
)

// TestConcurrentStreamStatsSumToRegistry pins the per-run attribution
// contract that makes a Mapper servable: N Stream runs executing
// concurrently on one Mapper must each report exactly their own work,
// and the N per-run Stats must sum to the registry movement. Before
// per-run accumulators, Stats was a diff of registry snapshots, so
// overlapping runs stole each other's counts — run it under -race to
// also prove the accumulators are data-race free.
func TestConcurrentStreamStatsSumToRegistry(t *testing.T) {
	ds := buildSmallDataset(t)
	mapper, err := jem.NewMapper(ds.Contigs, jem.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}

	var input bytes.Buffer
	if err := writeFASTQ(&input, ds.Reads); err != nil {
		t.Fatal(err)
	}
	before := mapper.Metrics().Snapshot()

	const runs = 8
	var (
		wg    sync.WaitGroup
		stats [runs]jem.Stats
		errs  [runs]error
	)
	for i := 0; i < runs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var out bytes.Buffer
			in := bytes.NewReader(input.Bytes())
			stats[i], errs[i] = mapper.Stream(context.Background(), in, &out, jem.StreamOptions{})
		}(i)
	}
	// Concurrent Map traffic on the same mapper moves the registry's
	// core counters mid-stream; it must not leak into any run's Stats.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 4; i++ {
			if _, err := mapper.Map(context.Background(), ds.Reads[:8], jem.MapOptions{}); err != nil {
				t.Errorf("concurrent Map: %v", err)
			}
		}
	}()
	wg.Wait()
	<-done

	var sum jem.Stats
	for i := 0; i < runs; i++ {
		if errs[i] != nil {
			t.Fatalf("run %d: %v", i, errs[i])
		}
		if stats[i].Reads != len(ds.Reads) {
			t.Errorf("run %d Reads = %d, want %d (per-run attribution)", i, stats[i].Reads, len(ds.Reads))
		}
		if stats[i].Segments == 0 || stats[i].PostingsScanned == 0 {
			t.Errorf("run %d recorded no work (segments=%d postings=%d)",
				i, stats[i].Segments, stats[i].PostingsScanned)
		}
		sum.Reads += stats[i].Reads
		sum.Segments += stats[i].Segments
		sum.Mapped += stats[i].Mapped
		sum.PostingsScanned += stats[i].PostingsScanned
		sum.ReadWall += stats[i].ReadWall
		sum.MapWall += stats[i].MapWall
		sum.WriteWall += stats[i].WriteWall
	}

	after := mapper.Metrics().Snapshot()
	movement := func(name string) int64 { return int64(after[name] - before[name]) }
	// The stream counters are moved only by Stream runs, so the per-run
	// sums must equal the registry movement exactly.
	if got := movement("jem_stream_reads_total"); got != int64(sum.Reads) {
		t.Errorf("registry reads moved %d, per-run sum %d", got, sum.Reads)
	}
	if got := movement("jem_stream_segments_total"); got != int64(sum.Segments) {
		t.Errorf("registry segments moved %d, per-run sum %d", got, sum.Segments)
	}
	if got := movement("jem_stream_segments_mapped_total"); got != int64(sum.Mapped) {
		t.Errorf("registry mapped moved %d, per-run sum %d", got, sum.Mapped)
	}
	// Wall gauges accumulate integer nanoseconds, so the per-run sums
	// are exact across concurrent runs; compare in nanoseconds (the
	// snapshot renders seconds as float, so recover ns by rounding
	// rather than comparing float sums, which are not associative).
	wall := map[string]int64{
		"jem_stream_read_wall_seconds":  int64(sum.ReadWall),
		"jem_stream_write_wall_seconds": int64(sum.WriteWall),
		"jem_stream_map_wall_seconds":   int64(sum.MapWall),
	}
	for name, want := range wall {
		if got := int64(math.Round((after[name] - before[name]) * 1e9)); got != want {
			t.Errorf("registry %s moved %dns, per-run sum %dns", name, got, want)
		}
	}
	// The core postings counter also absorbed the concurrent Map calls,
	// so the stream runs' sum bounds it from below strictly.
	if got := movement("jem_core_postings_scanned_total"); got <= sum.PostingsScanned {
		t.Errorf("core postings moved %d, want > stream sum %d (Map traffic ran too)", got, sum.PostingsScanned)
	}
	// Determinism guard: every run mapped the same input, so per-run
	// segment counts agree.
	for i := 1; i < runs; i++ {
		if stats[i].Segments != stats[0].Segments || stats[i].Mapped != stats[0].Mapped {
			t.Errorf("run %d segments/mapped = %d/%d, run 0 = %d/%d",
				i, stats[i].Segments, stats[i].Mapped, stats[0].Segments, stats[0].Mapped)
		}
	}
}
