package jem

import (
	"fmt"

	"repro/internal/core"
)

// MemoryMode selects how an index open turns file bytes into serving
// structures — the out-of-core knob for indexes larger than the memory
// a process wants to spend on them.
type MemoryMode uint8

const (
	// MemoryAuto serves a JEMIDX06 index from a read-only file mapping
	// and, when Memory.Budget is positive, decodes shards onto the heap
	// until the budget is spent — remaining shards stay load-on-demand
	// (verified on their first query). With no budget it behaves like
	// MemoryMMap. Pre-JEMIDX06 formats, and hosts without mmap, fall
	// back to a full heap load.
	MemoryAuto MemoryMode = iota
	// MemoryHeap decodes the whole index into process-private memory at
	// open — the classic load, fastest per lookup, largest footprint.
	MemoryHeap
	// MemoryMMap serves every shard as a zero-copy view over a shared
	// read-only mapping: near-zero resident cost, demand paging, and
	// physical pages shared across processes mapping the same file.
	MemoryMMap
)

func (md MemoryMode) String() string {
	switch md {
	case MemoryAuto:
		return "auto"
	case MemoryHeap:
		return "heap"
	case MemoryMMap:
		return "mmap"
	default:
		return fmt.Sprintf("MemoryMode(%d)", uint8(md))
	}
}

// ParseMemoryMode converts a CLI flag value ("auto", "heap", "mmap")
// into a MemoryMode.
func ParseMemoryMode(s string) (MemoryMode, error) {
	switch s {
	case "auto", "":
		return MemoryAuto, nil
	case "heap":
		return MemoryHeap, nil
	case "mmap":
		return MemoryMMap, nil
	default:
		return MemoryAuto, fmt.Errorf("jem: unknown memory mode %q (want auto, heap or mmap)", s)
	}
}

// Memory is the memory-budget contract an index open honors (see
// Options.Memory and docs/MEMORY.md).
type Memory struct {
	// Mode picks the serving residency. The zero value (MemoryAuto)
	// serves JEMIDX06 indexes from mmap.
	Mode MemoryMode
	// Budget caps the resident heap bytes MemoryAuto may spend decoding
	// shards; ≤0 means "no heap, map everything". Only meaningful with
	// MemoryAuto.
	Budget int64
}

// spec projects the facade option onto the core contract.
func (mm Memory) spec() core.MemorySpec {
	return core.MemorySpec{Mode: core.MemoryMode(mm.Mode), Budget: mm.Budget}
}

// validate checks the Memory fields alone — the piece of
// Options.Validate the pure index-load path needs (a load takes its
// sketch parameters from the index, not from Options).
func (mm Memory) validate() error {
	switch mm.Mode {
	case MemoryAuto, MemoryHeap, MemoryMMap:
	default:
		return optErr("Memory.Mode", mm.Mode, "is not a known MemoryMode")
	}
	if mm.Budget < 0 {
		return optErr("Memory.Budget", mm.Budget, "must be ≥ 0 (0 means no heap budget)")
	}
	if mm.Budget > 0 && mm.Mode != MemoryAuto {
		return optErr("Memory.Budget", mm.Budget,
			fmt.Sprintf("only applies to MemoryAuto (mode is %s, which ignores a budget)", mm.Mode))
	}
	return nil
}

// ShardMemory records where one shard of an open index lives.
type ShardMemory uint8

const (
	// ShardHeap: decoded into private memory at open.
	ShardHeap ShardMemory = iota
	// ShardMapped: zero-copy view over the file mapping, verified at
	// open.
	ShardMapped
	// ShardLazy: mapped but not yet built; its view is constructed —
	// and CRC-verified — on the shard's first query.
	ShardLazy
)

func (sm ShardMemory) String() string {
	switch sm {
	case ShardHeap:
		return "heap"
	case ShardMapped:
		return "mapped"
	case ShardLazy:
		return "lazy"
	default:
		return fmt.Sprintf("ShardMemory(%d)", uint8(sm))
	}
}

// MemoryInfo reports what an index open actually did with memory: the
// residency of each shard and the resulting split of the index's bytes
// into resident (private heap) and mapped (file-backed, shareable).
// The split is the open-time snapshot; Mapper.IndexMemory reports the
// live values, which grow as lazy shards fault in.
type MemoryInfo struct {
	// Mode is the mode the open ran under (the requested mode, or
	// MemoryHeap when the path taken cannot map — a build from contigs,
	// a pre-JEMIDX06 format, a host without mmap).
	Mode MemoryMode
	// Shards is the per-shard residency, in shard order. Empty when the
	// mapper has no local shards (remote serving).
	Shards []ShardMemory
	// ResidentBytes and MappedBytes split the index's backing arrays by
	// where they live.
	ResidentBytes int64
	MappedBytes   int64
}

// memInfoFromCore converts the core report, stamping the effective
// mode: a report with no mapped bytes and no lazy shards came off the
// heap path regardless of what was requested.
func memInfoFromCore(requested MemoryMode, ci core.MemoryInfo) MemoryInfo {
	info := MemoryInfo{
		Mode:          requested,
		ResidentBytes: ci.Resident,
		MappedBytes:   ci.Mapped,
	}
	if len(ci.Shards) > 0 {
		info.Shards = make([]ShardMemory, len(ci.Shards))
		mapped := false
		for i, r := range ci.Shards {
			info.Shards[i] = ShardMemory(r)
			if r != core.ResidenceHeap {
				mapped = true
			}
		}
		if !mapped {
			info.Mode = MemoryHeap
		}
	}
	return info
}

// heapMemoryInfo summarizes a mapper that was built (or loaded)
// entirely onto the heap.
func heapMemoryInfo(m *Mapper) MemoryInfo {
	info := MemoryInfo{Mode: MemoryHeap}
	if m.core.Remote() == nil {
		info.Shards = make([]ShardMemory, m.core.Shards())
	}
	info.ResidentBytes, info.MappedBytes = m.core.IndexMemory()
	return info
}

// IndexMemory splits IndexBytes into resident (process-private heap)
// and mapped (file-backed via mmap, shared across processes) bytes —
// the live values, which move as lazy shards of a budgeted open fault
// in. A heap-loaded index is all resident; an mmap-served one is all
// mapped.
func (m *Mapper) IndexMemory() (resident, mapped int64) {
	return m.core.IndexMemory()
}
