package jem_test

import (
	"bytes"
	"context"
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro"
	"repro/internal/fault"
)

// savedIndexWorld builds a P-sharded mapper over the shared dataset,
// saves its index, and returns the path, the builder, its streamed TSV
// and stats as the ground truth, plus the serialized reads.
func savedIndexWorld(t *testing.T, p int) (idx string, built *jem.Mapper, wantTSV []byte, wantStats jem.Stats, reads []byte) {
	t.Helper()
	ds, rd := distWorld(t)
	opts := jem.DefaultOptions()
	opts.Shards = p
	m, err := jem.NewMapper(ds.Contigs, opts)
	if err != nil {
		t.Fatal(err)
	}
	idx = filepath.Join(t.TempDir(), "idx.jem")
	if err := m.SaveIndexFile(idx); err != nil {
		t.Fatal(err)
	}
	var tsv bytes.Buffer
	stats, err := m.Stream(context.Background(), bytes.NewReader(rd), &tsv, jem.StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return idx, m, tsv.Bytes(), stats, rd
}

// TestOpenMemoryByteIdentity is the tentpole property: an index served
// from a read-only mapping — fully mapped, or budgeted with lazy
// shards — is indistinguishable from the heap load and from the mapper
// that built it: identical TSV bytes and identical PostingsScanned, at
// several shard counts.
func TestOpenMemoryByteIdentity(t *testing.T) {
	for _, p := range []int{1, 2, 8} {
		idx, built, wantTSV, wantStats, reads := savedIndexWorld(t, p)
		budget := built.IndexBytes() / 2
		if budget < 1 {
			budget = 1
		}
		for _, mem := range []jem.Memory{
			{Mode: jem.MemoryHeap},
			{Mode: jem.MemoryMMap},
			{Mode: jem.MemoryAuto, Budget: budget},
		} {
			opts := jem.Options{Memory: mem}
			m, info, err := jem.Open(jem.OpenOptions{IndexPath: idx, Options: opts})
			if err != nil {
				t.Fatalf("p=%d %v: %v", p, mem, err)
			}
			if !info.FromIndex {
				t.Fatalf("p=%d %v: not loaded from the index", p, mem)
			}
			if got := len(info.Memory.Shards); got != max(p, 1) {
				t.Fatalf("p=%d %v: %d shard residences", p, mem, got)
			}
			switch mem.Mode {
			case jem.MemoryHeap:
				if info.Memory.Mode != jem.MemoryHeap || info.Memory.MappedBytes != 0 {
					t.Fatalf("p=%d heap: info %+v", p, info.Memory)
				}
			case jem.MemoryMMap:
				if info.Memory.Mode != jem.MemoryMMap || info.Memory.MappedBytes <= 0 {
					t.Fatalf("p=%d mmap: info %+v", p, info.Memory)
				}
			}
			resident, mapped := m.IndexMemory()
			if resident != info.Memory.ResidentBytes || mapped != info.Memory.MappedBytes {
				t.Fatalf("p=%d %v: IndexMemory %d/%d != open-time %d/%d",
					p, mem, resident, mapped, info.Memory.ResidentBytes, info.Memory.MappedBytes)
			}
			var tsv bytes.Buffer
			stats, err := m.Stream(context.Background(), bytes.NewReader(reads), &tsv, jem.StreamOptions{})
			if err != nil {
				t.Fatalf("p=%d %v: stream: %v", p, mem, err)
			}
			if !bytes.Equal(tsv.Bytes(), wantTSV) {
				t.Fatalf("p=%d %v: TSV differs (%d vs %d bytes)", p, mem, tsv.Len(), len(wantTSV))
			}
			if stats.PostingsScanned != wantStats.PostingsScanned {
				t.Fatalf("p=%d %v: postings scanned %d != %d", p, mem, stats.PostingsScanned, wantStats.PostingsScanned)
			}
			if stats.ShardsLost != nil {
				t.Fatalf("p=%d %v: healthy run lost shards %v", p, mem, stats.ShardsLost)
			}
			if err := m.Close(); err != nil {
				t.Fatalf("p=%d %v: close: %v", p, mem, err)
			}
		}
	}
}

// TestOpenMemoryValidation: the Memory knob is validated like every
// other option — typed ErrInvalidOptions, no clamping.
func TestOpenMemoryValidation(t *testing.T) {
	idx, _, _, _, _ := savedIndexWorld(t, 2)
	bad := []jem.Memory{
		{Mode: jem.MemoryHeap, Budget: 1 << 20}, // budget without auto
		{Mode: jem.MemoryMMap, Budget: 1},
		{Budget: -1},
		{Mode: jem.MemoryMode(42)},
	}
	for _, mem := range bad {
		_, _, err := jem.Open(jem.OpenOptions{IndexPath: idx, Options: jem.Options{Memory: mem}})
		if !errors.Is(err, jem.ErrInvalidOptions) {
			t.Fatalf("Memory %+v: err %v, want ErrInvalidOptions", mem, err)
		}
	}
	if _, err := jem.ParseMemoryMode("balanced"); err == nil {
		t.Fatal("ParseMemoryMode accepted nonsense")
	}
	for in, want := range map[string]jem.MemoryMode{
		"": jem.MemoryAuto, "auto": jem.MemoryAuto,
		"heap": jem.MemoryHeap, "mmap": jem.MemoryMMap,
	} {
		got, err := jem.ParseMemoryMode(in)
		if err != nil || got != want {
			t.Fatalf("ParseMemoryMode(%q) = %v, %v", in, got, err)
		}
	}
}

// TestOpenMemoryInfoOnBuildAndRebuild: paths that never touch a
// mappable file — a fresh build, and the rebuild fallback after index
// corruption — report a heap-resident index even when the caller
// requested mmap, and the rebuild still answers correctly.
func TestOpenMemoryInfoOnBuildAndRebuild(t *testing.T) {
	ds, reads := distWorld(t)
	opts := jem.DefaultOptions()
	opts.Shards = 2
	opts.Memory = jem.Memory{Mode: jem.MemoryMMap}

	m1, info, err := jem.Open(jem.OpenOptions{Contigs: ds.Contigs, Options: opts})
	if err != nil {
		t.Fatal(err)
	}
	if info.Memory.Mode != jem.MemoryHeap || info.Memory.MappedBytes != 0 {
		t.Fatalf("build reported %+v, want heap", info.Memory)
	}
	idx := filepath.Join(t.TempDir(), "idx.jem")
	if err := m1.SaveIndexFile(idx); err != nil {
		t.Fatal(err)
	}
	var wantTSV bytes.Buffer
	if _, err := m1.Stream(context.Background(), bytes.NewReader(reads), &wantTSV, jem.StreamOptions{}); err != nil {
		t.Fatal(err)
	}

	if err := fault.FlipFileByte(idx); err != nil {
		t.Fatal(err)
	}
	m2, info, err := jem.Open(jem.OpenOptions{
		Contigs:          ds.Contigs,
		IndexPath:        idx,
		RebuildOnCorrupt: true,
		Options:          opts,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !info.Rebuilt || !errors.Is(info.IndexErr, jem.ErrIndexChecksum) {
		t.Fatalf("corrupt mmap-requested open: info %+v", info)
	}
	if info.Memory.Mode != jem.MemoryHeap || info.Memory.MappedBytes != 0 {
		t.Fatalf("rebuild reported %+v, want heap", info.Memory)
	}
	var tsv bytes.Buffer
	if _, err := m2.Stream(context.Background(), bytes.NewReader(reads), &tsv, jem.StreamOptions{}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(tsv.Bytes(), wantTSV.Bytes()) {
		t.Fatal("rebuilt mapper output differs from the original build")
	}
}

// TestStreamSurfacesFaultInFailure: when a budgeted open's lazy shard
// fails its deferred CRC verification mid-stream, the run completes
// degraded — full TSV shape, lost shards named in Stats.ShardsLost —
// and returns an error wrapping ErrIndexChecksum so callers know the
// answer was not exact.
func TestStreamSurfacesFaultInFailure(t *testing.T) {
	idx, _, _, _, reads := savedIndexWorld(t, 4)
	m, info, err := jem.Open(jem.OpenOptions{
		IndexPath: idx,
		Options:   jem.Options{Memory: jem.Memory{Mode: jem.MemoryAuto, Budget: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	var lazy int
	for _, r := range info.Memory.Shards {
		if r == jem.ShardLazy {
			lazy++
		}
	}
	if lazy == 0 {
		t.Skipf("no lazy shards on this platform (residences %v)", info.Memory.Shards)
	}

	fault.Set(fault.IndexFaultinByteFlip, fault.Spec{})
	defer fault.Reset()
	var tsv bytes.Buffer
	stats, err := m.Stream(context.Background(), bytes.NewReader(reads), &tsv, jem.StreamOptions{})
	if err == nil {
		t.Fatal("poisoned fault-in surfaced no error")
	}
	if !errors.Is(err, jem.ErrIndexChecksum) {
		t.Fatalf("stream error %v does not wrap ErrIndexChecksum", err)
	}
	if len(stats.ShardsLost) == 0 {
		t.Fatal("degraded run named no lost shards")
	}
	// Degraded output keeps its shape: header plus one well-formed row
	// per mapped segment, never a torn or empty file.
	if !strings.HasPrefix(tsv.String(), "read_id") {
		t.Fatalf("degraded TSV lost its header: %q", firstLine(tsv.String()))
	}
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

// TestSharedMappingTwoProcesses: two independent jem-mapper processes
// serving the same index with -memory mmap share its read-only pages
// and both produce output byte-identical to an in-process heap load —
// the cross-process contract of the out-of-core format.
func TestSharedMappingTwoProcesses(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the jem-mapper binary")
	}
	dir := t.TempDir()
	bin := buildMapperBinary(t, dir)
	contigPath, readPath := writeTinyDataset(t, dir, 8)

	idx := filepath.Join(dir, "tiny.idx")
	base := filepath.Join(dir, "base.tsv")
	if out, err := exec.Command(bin, "-save-index", idx, "-o", base, contigPath, readPath).CombinedOutput(); err != nil {
		t.Fatalf("index build run: %v\n%s", err, out)
	}
	want, err := os.ReadFile(base)
	if err != nil {
		t.Fatal(err)
	}

	outs := []string{filepath.Join(dir, "a.tsv"), filepath.Join(dir, "b.tsv")}
	cmds := make([]*exec.Cmd, len(outs))
	for i, o := range outs {
		cmds[i] = exec.Command(bin, "-load-index", idx, "-memory", "mmap", "-o", o, contigPath, readPath)
		buf := &bytes.Buffer{}
		cmds[i].Stderr = buf
		if err := cmds[i].Start(); err != nil {
			t.Fatal(err)
		}
	}
	for i, cmd := range cmds {
		if err := cmd.Wait(); err != nil {
			t.Fatalf("process %d: %v\n%s", i, err, cmd.Stderr)
		}
	}
	for i, o := range outs {
		got, err := os.ReadFile(o)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("process %d output differs from the heap run (%d vs %d bytes)", i, len(got), len(want))
		}
	}
}
