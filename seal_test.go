package jem_test

import (
	"bytes"
	"fmt"
	"testing"

	"repro"
	"repro/internal/core"
	"repro/internal/sketch"
)

// TestSealedFacadeMatchesUnsealedCoreTSV is the end-to-end guarantee
// behind making the frozen table the default serving path: a facade
// mapper (always sealed) and a plain unsealed core mapper over the
// same synthetic contigs must emit byte-identical TSV for the same
// reads.
func TestSealedFacadeMatchesUnsealedCoreTSV(t *testing.T) {
	ds := buildSmallDataset(t)
	opts := jem.DefaultOptions()

	mapper, err := jem.NewMapper(ds.Contigs, opts)
	if err != nil {
		t.Fatal(err)
	}
	var sealedTSV bytes.Buffer
	if err := jem.WriteTSV(&sealedTSV, mapAll(mapper, ds.Reads)); err != nil {
		t.Fatal(err)
	}

	// Reference: the pre-sealing serving path — a mutable hash-table
	// core mapper — rendered with the same row format.
	p := sketch.Params{K: opts.K, W: opts.W, T: opts.Trials, L: opts.SegmentLen, Seed: opts.Seed}
	cm, err := core.NewMapper(p)
	if err != nil {
		t.Fatal(err)
	}
	cm.AddSubjects(ds.Contigs)
	if cm.Sealed() {
		t.Fatal("reference mapper must stay unsealed")
	}
	var refTSV bytes.Buffer
	fmt.Fprintln(&refTSV, "read_id\tend\tcontig_id\tshared_trials")
	for _, r := range cm.MapReads(ds.Reads, opts.SegmentLen, 2) {
		end := jem.PrefixEnd
		if r.Kind == core.Suffix {
			end = jem.SuffixEnd
		}
		contig, trials := "*", "0"
		if r.Mapped() {
			contig = cm.Subject(r.Subject).Name
			trials = fmt.Sprintf("%d", r.Count)
		}
		fmt.Fprintf(&refTSV, "%s\t%s\t%s\t%s\n", ds.Reads[r.ReadIndex].ID, end, contig, trials)
	}

	if !bytes.Equal(sealedTSV.Bytes(), refTSV.Bytes()) {
		t.Error("sealed facade TSV differs from unsealed core TSV")
	}
}
