package jem_test

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro"
)

// smallTestOptions are cheap parameters for facade tests that do not
// need the paper's defaults.
func smallTestOptions() jem.Options {
	return jem.Options{K: 12, W: 10, Trials: 12, SegmentLen: 500, Seed: 7}
}

// TestShardedFacadeByteIdenticalTSV is the facade-level equivalence
// acceptance check: the WriteTSV output of sharded mappers is
// byte-identical to the unsharded one for every shard count, both
// freshly built and after a save/load round trip through JEMIDX05.
func TestShardedFacadeByteIdenticalTSV(t *testing.T) {
	ds := buildSmallDataset(t)
	opts := smallTestOptions()
	base, err := jem.NewMapper(ds.Contigs, opts)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	wantMaps, err := base.Map(context.Background(), ds.Reads, jem.MapOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := jem.WriteTSV(&want, wantMaps); err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{0, 1, 2, 3, 8} {
		opts := opts
		opts.Shards = p
		m, err := jem.NewMapper(ds.Contigs, opts)
		if err != nil {
			t.Fatalf("shards=%d: %v", p, err)
		}
		if p > 1 && m.Shards() != p {
			t.Fatalf("Shards() = %d, want %d", m.Shards(), p)
		}
		maps, err := m.Map(context.Background(), ds.Reads, jem.MapOptions{})
		if err != nil {
			t.Fatal(err)
		}
		var got bytes.Buffer
		if err := jem.WriteTSV(&got, maps); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got.Bytes(), want.Bytes()) {
			t.Fatalf("shards=%d: TSV differs from unsharded output", p)
		}
		// Save/load round trip preserves both shard count and output.
		var idx bytes.Buffer
		if err := m.SaveIndex(&idx); err != nil {
			t.Fatal(err)
		}
		loaded, err := jem.LoadMapper(bytes.NewReader(idx.Bytes()), ds.Contigs)
		if err != nil {
			t.Fatalf("shards=%d: load: %v", p, err)
		}
		if loaded.Shards() != m.Shards() {
			t.Fatalf("shards=%d: loaded mapper has %d shards", p, loaded.Shards())
		}
		lmaps, err := loaded.Map(context.Background(), ds.Reads, jem.MapOptions{})
		if err != nil {
			t.Fatal(err)
		}
		got.Reset()
		if err := jem.WriteTSV(&got, lmaps); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got.Bytes(), want.Bytes()) {
			t.Fatalf("shards=%d: TSV differs after index round trip", p)
		}
	}
}

// TestCanonicalDeterminism pins the repeatability contract of the
// canonical entry points: repeated Map and Stream calls on one mapper
// return identical results regardless of worker count.
func TestCanonicalDeterminism(t *testing.T) {
	ds := buildSmallDataset(t)
	m, err := jem.NewMapper(ds.Contigs, smallTestOptions())
	if err != nil {
		t.Fatal(err)
	}
	canonical, err := m.Map(context.Background(), ds.Reads, jem.MapOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := mapAll(m, ds.Reads); !reflect.DeepEqual(got, canonical) {
		t.Fatal("repeated Map call diverges")
	}
	if got, err := m.Map(context.Background(), ds.Reads, jem.MapOptions{Workers: 2}); err != nil || !reflect.DeepEqual(got, canonical) {
		t.Fatalf("Map with a worker override diverges (err=%v)", err)
	}

	var fa bytes.Buffer
	if err := seqWriteFASTA(&fa, ds.Reads); err != nil {
		t.Fatal(err)
	}
	var out1, out2 bytes.Buffer
	if _, err := m.Stream(context.Background(), bytes.NewReader(fa.Bytes()), &out1, jem.StreamOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := streamAll(m, bytes.NewReader(fa.Bytes()), &out2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out1.Bytes(), out2.Bytes()) {
		t.Fatal("repeated Stream call diverges")
	}
	// Per-call worker override must not change output either.
	var out3 bytes.Buffer
	if _, err := m.Stream(context.Background(), bytes.NewReader(fa.Bytes()), &out3, jem.StreamOptions{Workers: 2}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out3.Bytes(), out1.Bytes()) {
		t.Fatal("Stream with Workers override diverges")
	}
}

// seqWriteFASTA renders records as FASTA into w (tests only).
func seqWriteFASTA(w *bytes.Buffer, recs []jem.Record) error {
	for _, r := range recs {
		w.WriteString(">")
		w.WriteString(r.ID)
		w.WriteString("\n")
		w.Write(r.Seq)
		w.WriteString("\n")
	}
	return nil
}

func TestOptionsValidateTypedErrors(t *testing.T) {
	cases := []struct {
		name  string
		mod   func(*jem.Options)
		field string
	}{
		{"workers", func(o *jem.Options) { o.Workers = -1 }, "Workers"},
		{"segmentlen", func(o *jem.Options) { o.SegmentLen = 4 }, ""},
		{"tilestride", func(o *jem.Options) { o.TileStride = -2 }, "TileStride"},
		{"shards-negative", func(o *jem.Options) { o.Shards = -1 }, "Shards"},
		{"shards-huge", func(o *jem.Options) { o.Shards = 1 << 20 }, "Shards"},
	}
	for _, tc := range cases {
		opts := jem.DefaultOptions()
		tc.mod(&opts)
		err := opts.Validate()
		if err == nil {
			t.Errorf("%s: invalid options accepted", tc.name)
			continue
		}
		if !errors.Is(err, jem.ErrInvalidOptions) {
			t.Errorf("%s: error %v does not wrap ErrInvalidOptions", tc.name, err)
		}
		if tc.field != "" {
			var oe *jem.OptionError
			if !errors.As(err, &oe) || oe.Field != tc.field {
				t.Errorf("%s: error %v is not an OptionError for field %s", tc.name, err, tc.field)
			}
		}
		if _, nerr := jem.NewMapper(nil, opts); nerr == nil {
			t.Errorf("%s: NewMapper accepted invalid options", tc.name)
		}
	}
	if err := jem.DefaultOptions().Validate(); err != nil {
		t.Errorf("defaults rejected: %v", err)
	}
	// Per-call option structs are validated by the canonical methods.
	m, err := jem.NewMapper(nil, jem.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Map(context.Background(), nil, jem.MapOptions{Workers: -2}); !errors.Is(err, jem.ErrInvalidOptions) {
		t.Errorf("Map accepted Workers=-2: %v", err)
	}
	var sink bytes.Buffer
	if _, err := m.Stream(context.Background(), strings.NewReader(""), &sink, jem.StreamOptions{MaxRecordLen: -1}); !errors.Is(err, jem.ErrInvalidOptions) {
		t.Errorf("Stream accepted MaxRecordLen=-1: %v", err)
	}
}

func TestOpenBuildLoadRebuild(t *testing.T) {
	ds := buildSmallDataset(t)
	opts := smallTestOptions()
	opts.Shards = 3
	dir := t.TempDir()
	idxPath := filepath.Join(dir, "jem.idx")

	// Build path.
	built, info, err := jem.Open(jem.OpenOptions{Contigs: ds.Contigs, Options: opts})
	if err != nil {
		t.Fatal(err)
	}
	if info.FromIndex || info.Rebuilt || info.IndexErr != nil {
		t.Fatalf("build path reported %+v", info)
	}
	want := mapAll(built, ds.Reads)
	if err := built.SaveIndexFile(idxPath); err != nil {
		t.Fatal(err)
	}

	// Load path.
	loaded, info, err := jem.Open(jem.OpenOptions{Contigs: ds.Contigs, IndexPath: idxPath, Options: opts})
	if err != nil {
		t.Fatal(err)
	}
	if !info.FromIndex || info.Rebuilt {
		t.Fatalf("load path reported %+v", info)
	}
	if loaded.Shards() != 3 {
		t.Fatalf("loaded mapper has %d shards, want 3", loaded.Shards())
	}
	if got := mapAll(loaded, ds.Reads); !reflect.DeepEqual(got, want) {
		t.Fatal("loaded mapper maps differently")
	}

	// Corrupt the index; without the fallback the load fails...
	raw, err := os.ReadFile(idxPath)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x01
	if err := os.WriteFile(idxPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := jem.Open(jem.OpenOptions{Contigs: ds.Contigs, IndexPath: idxPath, Options: opts}); !errors.Is(err, jem.ErrIndexChecksum) {
		t.Fatalf("corrupt load error = %v, want ErrIndexChecksum", err)
	}
	// ...and with it the mapper is rebuilt from the contigs.
	rebuilt, info, err := jem.Open(jem.OpenOptions{
		Contigs: ds.Contigs, IndexPath: idxPath, RebuildOnCorrupt: true, Options: opts,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !info.Rebuilt || info.FromIndex || !errors.Is(info.IndexErr, jem.ErrIndexChecksum) {
		t.Fatalf("rebuild path reported %+v", info)
	}
	if got := mapAll(rebuilt, ds.Reads); !reflect.DeepEqual(got, want) {
		t.Fatal("rebuilt mapper maps differently")
	}

	// Error contracts: missing index file is NOT a rebuild trigger, and
	// Open with neither source is an error.
	if _, _, err := jem.Open(jem.OpenOptions{
		Contigs: ds.Contigs, IndexPath: filepath.Join(dir, "absent.idx"), RebuildOnCorrupt: true, Options: opts,
	}); err == nil {
		t.Fatal("missing index silently rebuilt")
	}
	if _, _, err := jem.Open(jem.OpenOptions{}); err == nil {
		t.Fatal("Open with neither contigs nor index succeeded")
	}
}
