package jem

import (
	"errors"
	"fmt"

	"repro/internal/sketch"
)

// ErrInvalidOptions marks every option-validation failure reported by
// this package; detect the class with errors.Is and the offending
// field with errors.As on *OptionError.
var ErrInvalidOptions = errors.New("jem: invalid options")

// OptionError reports one invalid option field: which field, the value
// it carried, and why it was rejected. It wraps ErrInvalidOptions.
type OptionError struct {
	Field  string // Options/StreamOptions field name, e.g. "Workers"
	Value  any    // the rejected value
	Reason string // human-readable constraint, e.g. "must be ≥ 0"
}

func (e *OptionError) Error() string {
	return fmt.Sprintf("jem: invalid options: %s=%v %s", e.Field, e.Value, e.Reason)
}

// Unwrap lets errors.Is(err, ErrInvalidOptions) match.
func (e *OptionError) Unwrap() error { return ErrInvalidOptions }

// optErr builds the one-field error value.
func optErr(field string, value any, reason string) error {
	return &OptionError{Field: field, Value: value, Reason: reason}
}

// Validate reports whether the options are usable, covering both the
// sketch parameters (K, W, Trials, SegmentLen, Seed) and the
// facade-level serving knobs (Workers, TileStride, Shards). Every
// failure wraps ErrInvalidOptions; field-level failures are
// *OptionError values naming the field. The canonical entry points
// (Open, NewMapper, Mapper.Map, Mapper.Stream) validate rather than
// silently clamping.
func (o Options) Validate() error {
	if err := o.params().Validate(); err != nil {
		return fmt.Errorf("%w: %w", ErrInvalidOptions, err)
	}
	if o.Workers < 0 {
		return optErr("Workers", o.Workers, "must be ≥ 0 (0 means GOMAXPROCS)")
	}
	if o.SegmentLen < o.K {
		return optErr("SegmentLen", o.SegmentLen, fmt.Sprintf("must be ≥ K=%d", o.K))
	}
	if o.TileStride < 0 {
		return optErr("TileStride", o.TileStride, "must be ≥ 0 (0 means SegmentLen, i.e. non-overlapping tiles)")
	}
	if o.Shards < 0 || o.Shards > sketch.MaxShards {
		return optErr("Shards", o.Shards, fmt.Sprintf("must be in [0,%d] (0 and 1 mean unsharded)", sketch.MaxShards))
	}
	if err := o.Memory.validate(); err != nil {
		return err
	}
	return nil
}

// validateStream checks the per-call streaming knobs the same way
// Options.Validate checks construction-time ones.
func (o StreamOptions) validate() error {
	if o.Workers < 0 {
		return optErr("Workers", o.Workers, "must be ≥ 0 (0 means the mapper's Workers setting)")
	}
	if o.MaxRecordLen < 0 {
		return optErr("MaxRecordLen", o.MaxRecordLen, "must be ≥ 0 (0 means unlimited)")
	}
	switch o.OnBadRecord {
	case BadRecordFail, BadRecordSkip, BadRecordQuarantine:
	default:
		return optErr("OnBadRecord", o.OnBadRecord, "is not a known BadRecordPolicy")
	}
	return nil
}
