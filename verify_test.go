package jem_test

import (
	"testing"

	"repro"
)

func TestMapReadsVerified(t *testing.T) {
	ds := buildSmallDataset(t)
	opts := jem.DefaultOptions()
	mapper, err := jem.NewMapper(ds.Contigs, opts)
	if err != nil {
		t.Fatal(err)
	}
	vms := mapper.MapReadsVerified(ds.Reads, jem.VerifyOptions{})
	if len(vms) == 0 {
		t.Fatal("no verified mappings")
	}
	bench, err := jem.BuildBenchmark(ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	plainQ := bench.Evaluate(mapAll(mapper, ds.Reads))

	mappings := make([]jem.Mapping, len(vms))
	mapped := 0
	for i, vm := range vms {
		mappings[i] = vm.Mapping
		if vm.Mapped {
			mapped++
			if vm.Identity < 80 {
				t.Errorf("verified mapping below MinIdentity: %+v", vm)
			}
			if vm.CIGAR == "" {
				t.Errorf("verified mapping lacks a CIGAR: %+v", vm.Mapping)
			}
			if vm.TargetEnd <= vm.TargetStart {
				t.Errorf("verified mapping has empty target span: %+v", vm.Mapping)
			}
		}
	}
	if mapped == 0 {
		t.Fatal("verification rejected everything")
	}
	verifiedQ := bench.Evaluate(mappings)
	t.Logf("plain precision %.4f, verified precision %.4f (mapped %d/%d)",
		plainQ.Precision, verifiedQ.Precision, mapped, len(vms))
	// Verification must not cost measurable precision; it exists to
	// gain it on repetitive inputs.
	if verifiedQ.Precision < plainQ.Precision-0.01 {
		t.Errorf("verification degraded precision: %.4f -> %.4f",
			plainQ.Precision, verifiedQ.Precision)
	}
}

func TestMapReadsVerifiedRejectsJunk(t *testing.T) {
	ds := buildSmallDataset(t)
	opts := jem.DefaultOptions()
	mapper, err := jem.NewMapper(ds.Contigs, opts)
	if err != nil {
		t.Fatal(err)
	}
	// A read of pure junk should be rejected by the identity floor
	// even if the sketch produced a spurious candidate.
	junk := make([]byte, 3000)
	for i := range junk {
		junk[i] = "ACGT"[(i*7+i/13)%4]
	}
	vms := mapper.MapReadsVerified([]jem.Record{{ID: "junk", Seq: junk}}, jem.VerifyOptions{MinIdentity: 90})
	for _, vm := range vms {
		if vm.Mapped {
			t.Errorf("junk read mapped at %.1f%% identity to %s", vm.Identity, vm.ContigID)
		}
	}
}
