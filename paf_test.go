package jem_test

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"repro"
)

func TestMapReadsPositionalAndPAF(t *testing.T) {
	ds := buildSmallDataset(t)
	opts := jem.DefaultOptions()
	mapper, err := jem.NewMapper(ds.Contigs, opts)
	if err != nil {
		t.Fatal(err)
	}
	pms := mapper.MapReadsPositional(ds.Reads)
	if len(pms) == 0 {
		t.Fatal("no positional mappings")
	}
	// Positional best hits agree with the plain path.
	plain := mapAll(mapper, ds.Reads)
	if len(plain) != len(pms) {
		t.Fatalf("lengths differ: %d vs %d", len(plain), len(pms))
	}
	strands := map[byte]int{}
	for i := range pms {
		if pms[i].Mapping != plain[i] {
			t.Fatalf("mapping %d differs: %+v vs %+v", i, pms[i].Mapping, plain[i])
		}
		if pms[i].QueryEnd <= pms[i].QueryStart {
			t.Fatalf("bad query span %+v", pms[i])
		}
		if pms[i].Mapped && pms[i].TargetStart >= 0 {
			if pms[i].TargetEnd <= pms[i].TargetStart {
				t.Fatalf("bad target span %+v", pms[i])
			}
			if pms[i].TargetEnd > len(ds.Contigs[pms[i].Contig].Seq) {
				t.Fatalf("target span overruns contig: %+v", pms[i])
			}
			strands[pms[i].Strand]++
		}
	}
	// Reads are sampled from both strands, so both orientations must
	// be detected, and '?' should be rare.
	if strands['+'] == 0 || strands['-'] == 0 {
		t.Errorf("strand estimates skewed: %v", strands)
	}
	if strands['?'] > (strands['+']+strands['-'])/10 {
		t.Errorf("too many unknown strands: %v", strands)
	}

	var buf bytes.Buffer
	if err := mapper.WritePAF(&buf, pms, ds.Reads); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) < len(pms)/2 {
		t.Fatalf("only %d PAF rows for %d mappings", len(lines), len(pms))
	}
	for _, line := range lines[:10] {
		fields := strings.Split(line, "\t")
		if len(fields) != 13 {
			t.Fatalf("PAF row has %d fields: %q", len(fields), line)
		}
		qlen, _ := strconv.Atoi(fields[1])
		qstart, _ := strconv.Atoi(fields[2])
		qend, _ := strconv.Atoi(fields[3])
		if qstart < 0 || qend > qlen || qstart >= qend {
			t.Errorf("bad query coords: %q", line)
		}
		if fields[4] != "+" && fields[4] != "-" {
			t.Errorf("bad strand: %q", line)
		}
		tlen, _ := strconv.Atoi(fields[6])
		tstart, _ := strconv.Atoi(fields[7])
		tend, _ := strconv.Atoi(fields[8])
		if tstart < 0 || tend > tlen || tstart >= tend {
			t.Errorf("bad target coords: %q", line)
		}
		mapq, _ := strconv.Atoi(fields[11])
		if mapq < 0 || mapq > 60 {
			t.Errorf("bad mapq: %q", line)
		}
		if !strings.HasPrefix(fields[12], "jm:i:") {
			t.Errorf("missing jm tag: %q", line)
		}
	}
}

func TestBuildScaffoldsOriented(t *testing.T) {
	ds := buildSmallDataset(t)
	opts := jem.DefaultOptions()
	mapper, err := jem.NewMapper(ds.Contigs, opts)
	if err != nil {
		t.Fatal(err)
	}
	pms := mapper.MapReadsPositional(ds.Reads)
	scaffolds := jem.BuildScaffoldsOriented(pms, ds.Reads, ds.Contigs, 1)
	if len(scaffolds) == 0 {
		t.Fatal("no oriented scaffolds")
	}
	seen := map[int]bool{}
	totalGapMag := 0
	joins := 0
	for _, sc := range scaffolds {
		if len(sc.Contigs) < 2 {
			t.Fatalf("chain too short: %+v", sc)
		}
		if len(sc.Reversed) != len(sc.Contigs) || len(sc.Gaps) != len(sc.Contigs) {
			t.Fatalf("ragged scaffold: %+v", sc)
		}
		if sc.Gaps[0] != 0 {
			t.Errorf("first gap must be 0: %+v", sc)
		}
		for i, c := range sc.Contigs {
			if c < 0 || c >= len(ds.Contigs) {
				t.Fatalf("contig %d out of range", c)
			}
			if seen[c] {
				t.Fatalf("contig %d in two scaffolds", c)
			}
			seen[c] = true
			if i > 0 {
				totalGapMag += abs(sc.Gaps[i])
				joins++
			}
		}
	}
	if joins == 0 {
		t.Fatal("no joins")
	}
	// Adjacent contigs from a contiguous assembly should have small
	// estimated gaps on average (well under a read length).
	if avg := totalGapMag / joins; avg > 8000 {
		t.Errorf("mean |gap| estimate %d implausibly large", avg)
	}
}

func TestStrandInferenceMatchesGroundTruth(t *testing.T) {
	// The offset-vote strand estimate must agree with the truth:
	// mapping strand = read sampling strand XOR contig placement
	// strand. Checked over the true-positive mappings.
	ds := buildSmallDataset(t)
	opts := jem.DefaultOptions()
	mapper, err := jem.NewMapper(ds.Contigs, opts)
	if err != nil {
		t.Fatal(err)
	}
	bench, err := jem.BuildBenchmark(ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	pms := mapper.MapReadsPositional(ds.Reads)
	agree, total := 0, 0
	for _, pm := range pms {
		if !pm.Mapped || pm.TargetStart < 0 || (pm.Strand != '+' && pm.Strand != '-') {
			continue
		}
		contigRev, placed := bench.ContigPlacement(pm.Contig)
		if !placed {
			continue
		}
		readRev := ds.Truth[pm.ReadIndex].Strand == '-'
		wantRev := readRev != contigRev
		total++
		if (pm.Strand == '-') == wantRev {
			agree++
		}
	}
	if total < 50 {
		t.Fatalf("only %d strand-checkable mappings", total)
	}
	t.Logf("strand agreement: %d/%d", agree, total)
	if agree*100 < total*95 {
		t.Errorf("strand inference agreed on only %d/%d mappings", agree, total)
	}
}

func TestHybridWorkflowImprovesContiguity(t *testing.T) {
	// The paper's whole motivation: long reads mapped onto a
	// fragmented short-read assembly should chain contigs into
	// scaffolds with better contiguity (N50) than the input contigs.
	ds, err := jem.Synthesize(jem.SynthesisConfig{
		Name:           "hybrid",
		GenomeLength:   600_000,
		RepeatFraction: 0.20, // fragment the assembly
		HiFiCoverage:   10,
		Seed:           55,
	})
	if err != nil {
		t.Fatal(err)
	}
	opts := jem.DefaultOptions()
	mapper, err := jem.NewMapper(ds.Contigs, opts)
	if err != nil {
		t.Fatal(err)
	}
	mappings := mapAll(mapper, ds.Reads)
	scaffolds := jem.BuildScaffolds(mappings, len(ds.Contigs), 2)

	n50 := func(lens []int) int {
		var total int64
		for _, l := range lens {
			total += int64(l)
		}
		cp := append([]int(nil), lens...)
		for i := 1; i < len(cp); i++ {
			for j := i; j > 0 && cp[j] > cp[j-1]; j-- {
				cp[j], cp[j-1] = cp[j-1], cp[j]
			}
		}
		var acc int64
		for _, l := range cp {
			acc += int64(l)
			if acc*2 >= total {
				return l
			}
		}
		return 0
	}
	var contigLens []int
	for i := range ds.Contigs {
		contigLens = append(contigLens, len(ds.Contigs[i].Seq))
	}
	inChain := map[int]bool{}
	var unitLens []int
	for _, sc := range scaffolds {
		span := 0
		for _, c := range sc.Contigs {
			span += len(ds.Contigs[c].Seq)
			inChain[c] = true
		}
		unitLens = append(unitLens, span)
	}
	for i := range ds.Contigs {
		if !inChain[i] {
			unitLens = append(unitLens, len(ds.Contigs[i].Seq))
		}
	}
	before, after := n50(contigLens), n50(unitLens)
	t.Logf("contig N50 %d -> scaffold N50 %d (%d scaffolds)", before, after, len(scaffolds))
	if after <= before {
		t.Errorf("scaffolding did not improve N50: %d -> %d", before, after)
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func TestPositionalTargetWindowsAreAccurate(t *testing.T) {
	// For segments cut directly from contigs, the estimated window
	// must overlap the true cut site.
	ds := buildSmallDataset(t)
	opts := jem.DefaultOptions()
	mapper, err := jem.NewMapper(ds.Contigs, opts)
	if err != nil {
		t.Fatal(err)
	}
	checked, good := 0, 0
	for ci := range ds.Contigs {
		contig := ds.Contigs[ci].Seq
		if len(contig) < 3*opts.SegmentLen {
			continue
		}
		cut := len(contig) / 2
		seg := contig[cut : cut+opts.SegmentLen]
		read := jem.Record{ID: "probe", Seq: seg}
		pms := mapper.MapReadsPositional([]jem.Record{read})
		if len(pms) != 1 || !pms[0].Mapped || pms[0].Contig != ci || pms[0].TargetStart < 0 {
			continue
		}
		checked++
		// Window [TargetStart, TargetEnd) should overlap [cut, cut+ℓ).
		if pms[0].TargetStart < cut+opts.SegmentLen && pms[0].TargetEnd > cut {
			good++
		}
		if checked >= 20 {
			break
		}
	}
	if checked < 5 {
		t.Skip("not enough long contigs to probe")
	}
	if good < checked*8/10 {
		t.Errorf("only %d/%d positional windows overlap the true site", good, checked)
	}
}
