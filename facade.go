package jem

import (
	"io"
	"strings"
	"time"

	"repro/internal/align"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/mashmap"
	"repro/internal/minhash"
	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/scaffold"
	"repro/internal/seedchain"
	"repro/internal/simulate"
	"repro/internal/truth"
)

// --- Distributed execution -------------------------------------------------

// DistributedOutput reports a simulated distributed-memory run.
type DistributedOutput struct {
	// Mappings is identical to what the shared-memory path produces.
	Mappings []Mapping
	// Total is the simulated end-to-end runtime.
	Total time.Duration
	// Steps lists per-step simulated durations in execution order.
	Steps []StepTime
	// CommFraction is the modeled communication share of Total (0..1).
	CommFraction float64
	// Throughput is query segments per simulated second of the
	// query-mapping step.
	Throughput float64
	// PhaseTrace is the rendered per-rank span tree: one root per
	// rank with sketch/gather/map children timing real wall clock on
	// that rank's goroutine (the simulated clock lives in Steps).
	PhaseTrace string
}

// StepTime is a named phase duration.
type StepTime struct {
	Name          string
	Duration      time.Duration
	Communication bool
}

// MapDistributed runs the mapper's S1–S4 distributed algorithm on p
// simulated ranks. Results are identical to NewMapper + MapReads with
// the same options.
func MapDistributed(contigs, reads []Record, p int, opts Options) (*DistributedOutput, error) {
	cfg := dist.Config{
		P:           p,
		Params:      opts.params(),
		MaxParallel: opts.Workers,
	}
	// When the caller serves a registry (jem-mapper -metrics-addr),
	// the per-rank spans land in its tracer and show up on /statusz
	// live while the ranks run.
	if opts.Metrics != nil {
		cfg.Tracer = opts.Metrics.Tracer()
	}
	out, err := dist.Run(contigs, reads, cfg)
	if err != nil {
		return nil, err
	}
	cm, err := core.NewMapper(opts.params())
	if err != nil {
		return nil, err
	}
	cm.RegisterSubjects(contigs)
	// Name-resolution mapper only: it registers subject metadata but
	// never maps, so it gets a private registry rather than the
	// caller's (its counters would all stay zero anyway).
	m := &Mapper{opts: opts, core: cm, reg: obs.NewRegistry()}
	m.met = newMapperMetrics(m.reg, cm)
	var trace strings.Builder
	if err := out.Trace.Render(&trace); err != nil {
		return nil, err
	}
	d := &DistributedOutput{
		Mappings:     m.convert(out.Results, reads),
		Total:        out.Timeline.Total(),
		CommFraction: out.Timeline.CommFraction(),
		Throughput:   out.Throughput(),
		PhaseTrace:   trace.String(),
	}
	for _, st := range out.Timeline.Steps {
		d.Steps = append(d.Steps, StepTime{
			Name:          st.Name,
			Duration:      st.Sim,
			Communication: st.Kind == mpi.Communication,
		})
	}
	return d, nil
}

// --- Baselines ---------------------------------------------------------------

// BaselineMapper is the common surface of the comparison mappers.
type BaselineMapper interface {
	// MapReads maps both end segments of every read.
	MapReads(reads []Record) []Mapping
}

type mashmapAdapter struct {
	m       *mashmap.Mapper
	contigs []Record
	opts    Options
}

// NewMashmapMapper builds the Mashmap-style baseline over the same
// contig set and parameter defaults as the JEM mapper.
func NewMashmapMapper(contigs []Record, opts Options) BaselineMapper {
	p := mashmap.Params{K: opts.K, W: opts.W, SegLen: opts.SegmentLen}
	return &mashmapAdapter{
		m:       mashmap.NewMapper(contigs, p, opts.Workers),
		contigs: contigs,
		opts:    opts,
	}
}

func (a *mashmapAdapter) MapReads(reads []Record) []Mapping {
	results := a.m.MapReads(reads, a.opts.SegmentLen, a.opts.Workers)
	return convertWithContigs(results, reads, a.contigs)
}

type minhashAdapter struct {
	m       *minhash.Mapper
	contigs []Record
	opts    Options
}

// NewMinHashMapper builds the classical-MinHash baseline (whole-
// sequence sketches, no interval constraint) used in the paper's
// Fig. 6 ablation.
func NewMinHashMapper(contigs []Record, opts Options) (BaselineMapper, error) {
	m, err := minhash.NewMapper(contigs, opts.params(), opts.Workers)
	if err != nil {
		return nil, err
	}
	return &minhashAdapter{m: m, contigs: contigs, opts: opts}, nil
}

func (a *minhashAdapter) MapReads(reads []Record) []Mapping {
	results := a.m.MapReads(reads, a.opts.SegmentLen, a.opts.Workers)
	return convertWithContigs(results, reads, a.contigs)
}

type seedchainAdapter struct {
	m       *seedchain.Mapper
	contigs []Record
	opts    Options
}

// NewSeedChainMapper builds the seed-and-chain baseline (the
// Minimap2-style approach) adapted to the best-hit protocol, so all
// three strategies the paper discusses are measurable on one
// benchmark.
func NewSeedChainMapper(contigs []Record, opts Options) BaselineMapper {
	p := seedchain.Defaults()
	p.K = opts.K
	return &seedchainAdapter{
		m:       seedchain.NewMapper(contigs, p, opts.Workers),
		contigs: contigs,
		opts:    opts,
	}
}

func (a *seedchainAdapter) MapReads(reads []Record) []Mapping {
	results := a.m.MapReads(reads, a.opts.SegmentLen, a.opts.Workers)
	return convertWithContigs(results, reads, a.contigs)
}

func convertWithContigs(results []core.Result, reads, contigs []Record) []Mapping {
	out := make([]Mapping, len(results))
	for i, r := range results {
		mp := Mapping{
			ReadIndex: int(r.ReadIndex),
			ReadID:    reads[r.ReadIndex].ID,
			End:       PrefixEnd,
		}
		if r.Kind == core.Suffix {
			mp.End = SuffixEnd
		}
		if r.Mapped() {
			mp.Mapped = true
			mp.Contig = int(r.Subject)
			mp.ContigID = contigs[r.Subject].ID
			mp.SharedTrials = int(r.Count)
		}
		out[i] = mp
	}
	return out
}

// --- Benchmarking / evaluation ------------------------------------------------

// Benchmark is the §IV-B ground-truth pair set.
type Benchmark struct {
	b *truth.Benchmark
	l int
}

// Quality is the precision/recall outcome of an evaluation.
type Quality struct {
	TP, FP, FN, TN int
	Precision      float64
	Recall         float64
	F1             float64
}

// BuildBenchmark locates contigs on the reference and enumerates the
// true ⟨segment, contig⟩ pairs under the ≥k-intersection rule.
func BuildBenchmark(ds *Dataset, opts Options) (*Benchmark, error) {
	b, err := truth.Build(ds.Chromosomes, ds.Contigs, ds.Truth, opts.SegmentLen, opts.K, truth.BuildOptions{})
	if err != nil {
		return nil, err
	}
	return &Benchmark{b: b, l: opts.SegmentLen}, nil
}

// Evaluate scores mappings against the benchmark.
func (bm *Benchmark) Evaluate(mappings []Mapping) Quality {
	results := make([]core.Result, len(mappings))
	for i, m := range mappings {
		r := core.Result{ReadIndex: int32(m.ReadIndex), Subject: -1}
		if m.End == SuffixEnd {
			r.Kind = core.Suffix
		}
		if m.Mapped {
			r.Subject = int32(m.Contig)
			r.Count = int32(m.SharedTrials)
		}
		results[i] = r
	}
	c := bm.b.Evaluate(results)
	return Quality{
		TP: c.TP, FP: c.FP, FN: c.FN, TN: c.TN,
		Precision: c.Precision(), Recall: c.Recall(), F1: c.F1(),
	}
}

// TruePairs returns the number of ground-truth pairs in the benchmark.
func (bm *Benchmark) TruePairs() int { return bm.b.Pairs() }

// ContigPlacement reports how the benchmark located a contig on the
// reference: whether it was placed at all, and whether it lies on the
// reverse strand. Tests use this to validate strand inference.
func (bm *Benchmark) ContigPlacement(contig int) (reverse, placed bool) {
	iv := bm.b.ContigIntervals[contig]
	return iv.Reverse, iv.Votes > 0
}

// --- Identity (Fig. 9) ---------------------------------------------------------

// PercentIdentity aligns a mapped segment against its contig (both
// orientations) and returns the alignment percent identity, the
// statistic of the paper's Fig. 9 real-data analysis.
func PercentIdentity(segment, contig []byte) float64 {
	return align.BestStrandIdentity(segment, contig, align.DefaultScoring()).PercentIdentity()
}

// --- Scaffolding -----------------------------------------------------------------

// Scaffold is an ordered chain of contig indices linked by long reads.
type Scaffold struct {
	Contigs []int
}

// BuildScaffolds chains contigs using reads whose two ends map to
// different contigs, requiring at least minSupport witnessing reads
// per link. numContigs is the size of the contig set the mappings
// refer to.
func BuildScaffolds(mappings []Mapping, numContigs, minSupport int) []Scaffold {
	results := make([]core.Result, 0, len(mappings))
	for _, m := range mappings {
		r := core.Result{ReadIndex: int32(m.ReadIndex), Subject: -1}
		if m.End == SuffixEnd {
			r.Kind = core.Suffix
		}
		if m.Mapped {
			r.Subject = int32(m.Contig)
		}
		results = append(results, r)
	}
	links := scaffold.BuildLinks(results)
	sc := scaffold.Build(links, numContigs, minSupport)
	out := make([]Scaffold, 0, len(sc.Chains))
	for _, chain := range sc.Chains {
		ints := make([]int, len(chain))
		for i, c := range chain {
			ints[i] = int(c)
		}
		out = append(out, Scaffold{Contigs: ints})
	}
	return out
}

// OrientedScaffold is a chain of contigs with per-contig orientation
// and estimated inter-contig gaps, built from positional mappings.
type OrientedScaffold struct {
	// Contigs lists the chain in order.
	Contigs []int
	// Reversed[i] is true when Contigs[i] enters reverse-complemented.
	Reversed []bool
	// Gaps[i] is the estimated gap (possibly negative = overlap)
	// between Contigs[i-1] and Contigs[i]; Gaps[0] is always 0.
	Gaps []int
}

// BuildScaffoldsOriented chains contigs with orientation and gap
// estimates from positional mappings — the richer counterpart of
// BuildScaffolds enabled by the positional sketch table. reads and
// contigs must be the slices the mappings refer to.
func BuildScaffoldsOriented(mappings []PositionalMapping, reads, contigs []Record, minSupport int) []OrientedScaffold {
	scaffolds, _ := BuildScaffoldsOrientedFull(mappings, reads, contigs, minSupport)
	return scaffolds
}

// BuildScaffoldsOrientedFull is BuildScaffoldsOriented plus the list
// of singleton contigs that joined no chain (needed for complete AGP
// output).
func BuildScaffoldsOrientedFull(mappings []PositionalMapping, reads, contigs []Record, minSupport int) ([]OrientedScaffold, []int) {
	segLen := 0
	var segObs []scaffold.SegmentObservation
	for _, pm := range mappings {
		if !pm.Mapped || pm.TargetStart < 0 {
			continue
		}
		if n := pm.QueryEnd - pm.QueryStart; n > segLen {
			segLen = n
		}
		segObs = append(segObs, scaffold.SegmentObservation{
			ReadIndex:    int32(pm.ReadIndex),
			Prefix:       pm.End == PrefixEnd,
			Contig:       int32(pm.Contig),
			Reverse:      pm.Strand == '-',
			TargetStart:  pm.TargetStart,
			TargetEnd:    pm.TargetEnd,
			ContigLength: len(contigs[pm.Contig].Seq),
			ReadLength:   len(reads[pm.ReadIndex].Seq),
			SegmentLen:   pm.QueryEnd - pm.QueryStart,
		})
	}
	links := scaffold.AggregateEvidence(scaffold.DeriveEvidence(segObs))
	sc := scaffold.BuildOriented(links, len(contigs), minSupport)
	out := make([]OrientedScaffold, 0, len(sc.Chains))
	for _, chain := range sc.Chains {
		os := OrientedScaffold{
			Contigs:  make([]int, len(chain)),
			Reversed: make([]bool, len(chain)),
			Gaps:     make([]int, len(chain)),
		}
		for i, p := range chain {
			os.Contigs[i] = int(p.Contig)
			os.Reversed[i] = p.Reversed
			os.Gaps[i] = p.GapBefore
		}
		out = append(out, os)
	}
	singles := make([]int, len(sc.Singletons))
	for i, c := range sc.Singletons {
		singles[i] = int(c)
	}
	return out, singles
}

// WriteAGP renders oriented scaffolds (plus singleton contigs) in AGP
// v2.1. Negative or tiny gap estimates are clamped to minGap, as AGP
// gaps must be positive.
func WriteAGP(w io.Writer, scaffolds []OrientedScaffold, singletons []int, contigs []Record, minGap int) error {
	sc := &scaffold.OrientedScaffolds{}
	for _, s := range scaffolds {
		chain := make([]scaffold.Placement, len(s.Contigs))
		for i := range s.Contigs {
			chain[i] = scaffold.Placement{
				Contig:    int32(s.Contigs[i]),
				Reversed:  s.Reversed[i],
				GapBefore: s.Gaps[i],
			}
		}
		sc.Chains = append(sc.Chains, chain)
	}
	for _, c := range singletons {
		sc.Singletons = append(sc.Singletons, int32(c))
	}
	return scaffold.WriteAGP(w, sc,
		func(c int32) string { return contigs[c].ID },
		func(c int32) int { return len(contigs[c].Seq) },
		minGap)
}

// GroundTruthReads re-derives simulate.Read ground truth from read
// record descriptions (for datasets loaded from disk rather than
// synthesized in-process).
func GroundTruthReads(reads []Record) ([]simulate.Read, error) {
	out := make([]simulate.Read, len(reads))
	for i, r := range reads {
		chrom, start, end, strand, err := simulate.ParseCoords(r.Desc)
		if err != nil {
			return nil, err
		}
		out[i] = simulate.Read{Rec: r, Chrom: chrom, Start: start, End: end, Strand: strand}
	}
	return out, nil
}
