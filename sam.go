package jem

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/seq"
)

// WriteSAM writes verified mappings as a SAM file: an @HD/@SQ header
// over the contig set, then one alignment record per mapped end
// segment. Record conventions:
//
//   - QNAME is "<read id>/prefix" or "<read id>/suffix".
//   - SEQ is the segment (reverse-complemented for flag-0x10 records,
//     per the SAM spec), so the CIGAR from verification applies as-is.
//   - POS is the 1-based alignment start on the contig; MAPQ scales
//     the shared-trial count to [0,60].
//   - Optional tags: jm:i (shared trials), pi:f (percent identity).
//
// Unmapped segments are emitted with flag 0x4 and '*' placeholders, so
// the output accounts for every segment.
func (m *Mapper) WriteSAM(w io.Writer, mappings []VerifiedMapping, reads []Record) error {
	if _, err := fmt.Fprintf(w, "@HD\tVN:1.6\tSO:unknown\n"); err != nil {
		return err
	}
	for i := 0; i < m.NumContigs(); i++ {
		meta := m.core.Subject(int32(i))
		if _, err := fmt.Fprintf(w, "@SQ\tSN:%s\tLN:%d\n", meta.Name, meta.Length); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "@PG\tID:jem-mapper\tPN:jem-mapper\n"); err != nil {
		return err
	}
	for _, vm := range mappings {
		qname := fmt.Sprintf("%s/%s", vm.ReadID, vm.End)
		if !vm.Mapped {
			if _, err := fmt.Fprintf(w, "%s\t4\t*\t0\t0\t*\t*\t0\t0\t*\t*\n", qname); err != nil {
				return err
			}
			continue
		}
		read := reads[vm.ReadIndex].Seq
		segs, kinds := core.EndSegments(read, m.opts.SegmentLen)
		var segment []byte
		for i, kind := range kinds {
			if (kind == core.Prefix) == (vm.End == PrefixEnd) {
				segment = segs[i]
			}
		}
		flag := 0
		if vm.Reverse {
			flag |= 0x10
			segment = seq.ReverseComplement(segment)
		}
		mapq := 60 * vm.SharedTrials / m.opts.Trials
		if mapq > 60 {
			mapq = 60
		}
		cigar := vm.CIGAR
		if cigar == "" {
			cigar = "*"
		}
		if _, err := fmt.Fprintf(w, "%s\t%d\t%s\t%d\t%d\t%s\t*\t0\t0\t%s\t*\tjm:i:%d\tpi:f:%.2f\n",
			qname, flag, vm.ContigID, vm.TargetStart+1, mapq, cigar,
			segment, vm.SharedTrials, vm.Identity); err != nil {
			return err
		}
	}
	return nil
}
