package jem_test

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro"
)

func TestTSVRoundTrip(t *testing.T) {
	reads := []jem.Record{{ID: "r0"}, {ID: "r1"}}
	contigs := []jem.Record{{ID: "c0"}, {ID: "c1"}}
	mappings := []jem.Mapping{
		{ReadIndex: 0, ReadID: "r0", End: jem.PrefixEnd, Mapped: true, Contig: 1, ContigID: "c1", SharedTrials: 17},
		{ReadIndex: 0, ReadID: "r0", End: jem.SuffixEnd},
		{ReadIndex: 1, ReadID: "r1", End: jem.PrefixEnd, Mapped: true, Contig: 0, ContigID: "c0", SharedTrials: 30},
	}
	var buf bytes.Buffer
	if err := jem.WriteTSV(&buf, mappings); err != nil {
		t.Fatal(err)
	}
	got, err := jem.ReadTSV(&buf, reads, contigs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, mappings) {
		t.Errorf("round trip:\n got %+v\nwant %+v", got, mappings)
	}
}

func TestReadTSVWithoutHeader(t *testing.T) {
	reads := []jem.Record{{ID: "r0"}}
	contigs := []jem.Record{{ID: "c0"}}
	got, err := jem.ReadTSV(strings.NewReader("r0\tprefix\tc0\t5\n"), reads, contigs)
	if err != nil || len(got) != 1 || !got[0].Mapped {
		t.Errorf("got %+v err %v", got, err)
	}
}

func TestReadTSVErrors(t *testing.T) {
	reads := []jem.Record{{ID: "r0"}}
	contigs := []jem.Record{{ID: "c0"}}
	cases := []string{
		"r0\tprefix\tc0\n",         // missing column
		"rX\tprefix\tc0\t5\n",      // unknown read
		"r0\tmiddle\tc0\t5\n",      // bad end
		"r0\tprefix\tcX\t5\n",      // unknown contig
		"r0\tprefix\tc0\tbanana\n", // bad trials
	}
	for _, in := range cases {
		if _, err := jem.ReadTSV(strings.NewReader(in), reads, contigs); err == nil {
			t.Errorf("input %q should fail", in)
		}
	}
	// Blank lines are tolerated.
	got, err := jem.ReadTSV(strings.NewReader("\n\nr0\tprefix\t*\t0\n\n"), reads, contigs)
	if err != nil || len(got) != 1 || got[0].Mapped {
		t.Errorf("blank-line input: %+v err %v", got, err)
	}
}

// FuzzReadTSV asserts the TSV parser never panics.
func FuzzReadTSV(f *testing.F) {
	f.Add("read_id\tend\tcontig_id\tshared_trials\nr0\tprefix\tc0\t5\n")
	f.Add("r0\tsuffix\t*\t0\n")
	f.Add("\x00\t\t\t\n")
	f.Fuzz(func(t *testing.T, data string) {
		reads := []jem.Record{{ID: "r0"}}
		contigs := []jem.Record{{ID: "c0"}}
		mappings, err := jem.ReadTSV(strings.NewReader(data), reads, contigs)
		if err != nil {
			return
		}
		for _, m := range mappings {
			if m.ReadIndex != 0 {
				t.Fatalf("accepted mapping with bad read index: %+v", m)
			}
			if m.Mapped && m.Contig != 0 {
				t.Fatalf("accepted mapping with bad contig: %+v", m)
			}
		}
	})
}
