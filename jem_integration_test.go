package jem_test

import (
	"testing"

	"repro"
)

// buildSmallDataset synthesizes a compact dataset shared by the
// integration tests. Kept small enough for -short runs.
func buildSmallDataset(t testing.TB) *jem.Dataset {
	t.Helper()
	ds, err := jem.Synthesize(jem.SynthesisConfig{
		Name:           "itest",
		GenomeLength:   300_000,
		RepeatFraction: 0.05,
		HiFiCoverage:   4,
		HiFiMedianLen:  8000,
		ShortCoverage:  25,
		Seed:           42,
	})
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	return ds
}

func TestEndToEndQuality(t *testing.T) {
	ds := buildSmallDataset(t)
	if len(ds.Contigs) < 3 {
		t.Fatalf("assembly produced only %d contigs", len(ds.Contigs))
	}
	opts := jem.DefaultOptions()
	mapper, err := jem.NewMapper(ds.Contigs, opts)
	if err != nil {
		t.Fatalf("NewMapper: %v", err)
	}
	mappings := mapAll(mapper, ds.Reads)
	if len(mappings) == 0 {
		t.Fatal("no mappings produced")
	}
	bench, err := jem.BuildBenchmark(ds, opts)
	if err != nil {
		t.Fatalf("BuildBenchmark: %v", err)
	}
	if bench.TruePairs() == 0 {
		t.Fatal("benchmark has no true pairs")
	}
	q := bench.Evaluate(mappings)
	t.Logf("contigs=%d reads=%d mappings=%d truepairs=%d TP=%d FP=%d FN=%d TN=%d precision=%.4f recall=%.4f",
		len(ds.Contigs), len(ds.Reads), len(mappings), bench.TruePairs(),
		q.TP, q.FP, q.FN, q.TN, q.Precision, q.Recall)
	if q.Precision < 0.90 {
		t.Errorf("precision %.4f below 0.90", q.Precision)
	}
	if q.Recall < 0.85 {
		t.Errorf("recall %.4f below 0.85", q.Recall)
	}
}
