// White-box benchmark for the MapStream TSV hot loop: the reused
// []byte + strconv.AppendInt row formatter versus the fmt.Fprintf
// call it replaced. Run with
//
//	go test -bench=MapStreamWrite -benchmem .
//
// to see the per-row allocation delta.
package jem

import (
	"fmt"
	"io"
	"testing"
)

func benchRows() []Mapping {
	rows := make([]Mapping, 0, 1024)
	for i := 0; i < 512; i++ {
		rows = append(rows, Mapping{
			ReadIndex: i, ReadID: fmt.Sprintf("read%05d", i), End: PrefixEnd,
			Mapped: true, Contig: i % 37, ContigID: fmt.Sprintf("contig%03d", i%37),
			SharedTrials: 20 + i%10,
		})
		rows = append(rows, Mapping{
			ReadIndex: i, ReadID: fmt.Sprintf("read%05d", i), End: SuffixEnd,
		})
	}
	return rows
}

func BenchmarkMapStreamWrite(b *testing.B) {
	rows := benchRows()

	b.Run("append", func(b *testing.B) {
		buf := make([]byte, 0, 128)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for j := range rows {
				buf = appendTSVRow(buf[:0], &rows[j])
				if _, err := io.Discard.Write(buf); err != nil {
					b.Fatal(err)
				}
			}
		}
	})

	// The pre-optimization formatting path, kept for comparison.
	b.Run("fprintf", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for j := range rows {
				m := &rows[j]
				var err error
				if m.Mapped {
					_, err = fmt.Fprintf(io.Discard, "%s\t%s\t%s\t%d\n",
						m.ReadID, m.End, m.ContigID, m.SharedTrials)
				} else {
					_, err = fmt.Fprintf(io.Discard, "%s\t%s\t*\t0\n", m.ReadID, m.End)
				}
				if err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}
