package jem

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// mergeShardWork folds one worker session's per-shard work tallies
// into the run-wide aggregate (growing it if this worker saw more
// shards). Called once per worker at exit, under the run's shard
// mutex.
func mergeShardWork(dst, src []core.ShardWork) []core.ShardWork {
	if len(src) > len(dst) {
		grown := make([]core.ShardWork, len(src))
		copy(grown, dst)
		dst = grown
	}
	for i, w := range src {
		dst[i].Postings += w.Postings
		dst[i].Wall += w.Wall
	}
	return dst
}

// attachStreamSpans turns one finished run's phase accumulators into
// children of the request span: read/sketch/gather/write phase spans,
// per-shard children under gather (sharded index only), and run stats
// as attributes. Phases overlap in wall time (the stream is
// pipelined), so these children measure work inside each phase, not a
// partition of the request's elapsed time; sketch is worker time not
// attributed to shard scans.
func attachStreamSpans(sp *obs.Span, st Stats, shards []core.ShardWork) {
	sp.AddTimed("read", st.ReadWall)
	var gather time.Duration
	for _, w := range shards {
		gather += w.Wall
	}
	sketch := st.MapWall - gather
	if sketch < 0 {
		sketch = 0
	}
	sp.AddTimed("sketch", sketch)
	if len(shards) > 0 {
		g := sp.AddTimed("gather", gather)
		g.SetAttr("shards", len(shards))
		for i, w := range shards {
			c := g.AddTimed(fmt.Sprintf("shard%02d", i), w.Wall)
			c.SetAttr("postings", w.Postings)
		}
	}
	sp.AddTimed("write", st.WriteWall)
	sp.SetAttr("reads", st.Reads)
	sp.SetAttr("segments", st.Segments)
	sp.SetAttr("mapped", st.Mapped)
	sp.SetAttr("postings", st.PostingsScanned)
	if st.BadRecords > 0 {
		sp.SetAttr("bad_records", st.BadRecords)
	}
	if st.WorkerPanics > 0 {
		sp.SetAttr("worker_panics", st.WorkerPanics)
	}
}
