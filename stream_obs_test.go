package jem_test

import (
	"bytes"
	"io"
	"math"
	"net/http"
	"strings"
	"testing"

	"repro"
	"repro/internal/obs"
)

// TestMapStreamStatsMatchRegistry pins the single-source-of-truth
// contract: the Stats MapStream returns must equal the movement of
// the mapper's obs.Registry instruments — there is no parallel
// bookkeeping left to drift.
func TestMapStreamStatsMatchRegistry(t *testing.T) {
	ds := buildSmallDataset(t)
	mapper, err := jem.NewMapper(ds.Contigs, jem.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var reads bytes.Buffer
	if err := writeFASTQ(&reads, ds.Reads); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	stats, err := streamAll(mapper, &reads, &out)
	if err != nil {
		t.Fatal(err)
	}

	snap := mapper.Metrics().Snapshot()
	intVals := map[string]int64{
		"jem_stream_reads_total":           int64(stats.Reads),
		"jem_stream_segments_total":        int64(stats.Segments),
		"jem_stream_segments_mapped_total": int64(stats.Mapped),
		"jem_core_postings_scanned_total":  stats.PostingsScanned,
	}
	for name, want := range intVals {
		if got := int64(snap[name]); got != want {
			t.Errorf("registry %s = %d, stats say %d", name, got, want)
		}
	}
	wallVals := map[string]float64{
		"jem_stream_read_wall_seconds":  stats.ReadWall.Seconds(),
		"jem_stream_map_wall_seconds":   stats.MapWall.Seconds(),
		"jem_stream_write_wall_seconds": stats.WriteWall.Seconds(),
	}
	for name, want := range wallVals {
		if got := snap[name]; math.Abs(got-want) > 1e-6 {
			t.Errorf("registry %s = %v, stats say %v", name, got, want)
		}
	}
	// The core lookup histogram must have one observation per segment.
	if got := int64(snap["jem_core_lookup_seconds_count"]); got != int64(stats.Segments) {
		t.Errorf("lookup histogram count = %d, want %d", got, stats.Segments)
	}

	// A second run on the same mapper accumulates in the registry but
	// Stats stays per-run (snapshot-diff semantics).
	var reads2, out2 bytes.Buffer
	if err := writeFASTQ(&reads2, ds.Reads); err != nil {
		t.Fatal(err)
	}
	stats2, err := streamAll(mapper, &reads2, &out2)
	if err != nil {
		t.Fatal(err)
	}
	if stats2.Reads != len(ds.Reads) {
		t.Errorf("second run Reads = %d, want %d (per-run, not cumulative)", stats2.Reads, len(ds.Reads))
	}
	snap2 := mapper.Metrics().Snapshot()
	if got, want := int64(snap2["jem_stream_reads_total"]), int64(2*len(ds.Reads)); got != want {
		t.Errorf("registry reads after two runs = %d, want %d (cumulative)", got, want)
	}
}

// TestMapStreamServedLive drives the acceptance path end to end in
// process: serve the mapper's registry, run a streamed mapping, then
// scrape /metrics, /debug/vars and the pprof index while the server
// is up.
func TestMapStreamServedLive(t *testing.T) {
	ds := buildSmallDataset(t)
	reg := obs.NewRegistry()
	opts := jem.DefaultOptions()
	opts.Metrics = reg
	mapper, err := jem.NewMapper(ds.Contigs, opts)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := obs.Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var reads, out bytes.Buffer
	if err := writeFASTQ(&reads, ds.Reads); err != nil {
		t.Fatal(err)
	}
	stats, err := streamAll(mapper, &reads, &out)
	if err != nil {
		t.Fatal(err)
	}

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get(srv.URL() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, _ := io.ReadAll(resp.Body)
		return string(body)
	}
	metrics := get("/metrics")
	for _, want := range []string{
		"jem_stream_reads_total", "jem_core_postings_scanned_total",
		"jem_core_lookup_seconds_bucket", "jem_stream_map_wall_seconds",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
	if !strings.Contains(get("/debug/vars"), "jem_metrics") {
		t.Error("/debug/vars missing the jem_metrics snapshot")
	}
	if !strings.Contains(get("/debug/pprof/"), "profile") {
		t.Error("/debug/pprof/ index missing the CPU profile link")
	}
	if !strings.Contains(get("/statusz"), "index.build") {
		t.Error("/statusz missing the index.build span")
	}
	if stats.Segments == 0 {
		t.Error("no segments mapped")
	}
}
