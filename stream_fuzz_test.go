package jem_test

import (
	"bytes"
	"context"
	"io"
	"sync"
	"testing"

	"repro"
)

// fuzzStreamMapper builds one tiny mapper shared by every fuzz
// execution (building per-exec would make the fuzzer useless).
var fuzzStreamMapper = sync.OnceValue(func() *jem.Mapper {
	contigs := []jem.Record{
		{ID: "c1", Seq: bytes.Repeat([]byte("ACGTTGCAAC"), 30)},
		{ID: "c2", Seq: bytes.Repeat([]byte("TTGACCATGG"), 30)},
	}
	opts := jem.Options{K: 8, W: 4, Trials: 4, SegmentLen: 50, Seed: 1}
	m, err := jem.NewMapper(contigs, opts)
	if err != nil {
		panic(err)
	}
	return m
})

// FuzzMapStream feeds arbitrary — mostly corrupt and truncated —
// FASTA/FASTQ bytes through the full streaming pipeline under both the
// fail and quarantine policies. The pipeline must never panic, and
// for in-memory input (no I/O errors possible) the quarantine policy
// must always finish the stream: every error is either consumed as a
// bad record or the input simply ends.
func FuzzMapStream(f *testing.F) {
	f.Add([]byte("@r1\nACGTTGCAACACGTTGCAAC\n+\nIIIIIIIIIIIIIIIIIIII\n"))
	f.Add([]byte(">r1\nACGTTGCAACACGTTGCAAC\n"))
	f.Add([]byte("@r1\nACGT\n+\n"))              // truncated final record
	f.Add([]byte("@r1\nACGT\nIIII\n@r2\nAC\n"))  // missing '+' then truncation
	f.Add([]byte(">a\n>b\nACGT\n>c"))            // empty record, header at EOF
	f.Add([]byte("@\n\n+\n\n@@@\n@@@\nzz\n"))    // resync bait
	f.Add([]byte("no header at all\nACGT\n"))    // sniff failure
	f.Add([]byte{0, '>', 'x', '\n', 0xff, 0xfe}) // binary garbage
	f.Fuzz(func(t *testing.T, data []byte) {
		m := fuzzStreamMapper()
		// Fail policy: any error is acceptable, panics are not.
		if _, err := streamAll(m, bytes.NewReader(data), io.Discard); err != nil {
			_ = err.Error() // errors must render
		}
		// Quarantine policy over in-memory input: the stream must always
		// reach EOF — structural damage is never fatal here.
		var sidecar bytes.Buffer
		stats, err := m.Stream(context.Background(), bytes.NewReader(data), io.Discard,
			jem.StreamOptions{OnBadRecord: jem.BadRecordQuarantine, Quarantine: &sidecar, MaxRecordLen: 1 << 16})
		if err != nil {
			t.Fatalf("quarantine policy failed on in-memory input: %v\ninput: %q", err, data)
		}
		if stats.Quarantined != stats.BadRecords {
			t.Fatalf("quarantined %d != bad %d", stats.Quarantined, stats.BadRecords)
		}
	})
}
