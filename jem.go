// Package jem is the public API of this repository: a Go
// implementation of JEM-mapper, the parallel sketch-based algorithm
// for mapping long reads to contigs from Rahman, Bhowmik and
// Kalyanaraman (IPDPSW 2023).
//
// The mapper answers the L2C problem: given a set of long reads
// (queries) and a set of contigs (subjects), report for each end
// segment of each read the best-matching contig, using a
// minimizer-based Jaccard estimator (JEM) sketch instead of
// alignment. Typical use:
//
//	contigs, _ := jem.ReadSequences("contigs.fasta")
//	reads, _ := jem.ReadSequences("reads.fastq")
//	mapper, _ := jem.NewMapper(contigs, jem.DefaultOptions())
//	mappings, _ := mapper.Map(context.Background(), reads, jem.MapOptions{})
//
// Sub-APIs expose the rest of the reproduced system: dataset
// synthesis (Synthesize), the distributed-memory simulation
// (MapDistributed), baselines (NewMashmapMapper, NewMinHashMapper),
// benchmark evaluation (BuildBenchmark, Evaluate) and scaffolding
// (BuildScaffolds).
package jem

import (
	"context"
	"io"
	"strconv"

	"repro/internal/core"
	"repro/internal/minimizer"
	"repro/internal/obs"
	"repro/internal/seq"
	"repro/internal/sketch"
)

// Record is a named DNA sequence (FASTA/FASTQ record).
type Record = seq.Record

// ReadSequences loads all records from a FASTA or FASTQ file.
func ReadSequences(path string) ([]Record, error) { return seq.ReadFile(path) }

// WriteFASTA writes records to a FASTA file (80-column lines).
func WriteFASTA(path string, records []Record) error { return seq.WriteFASTAFile(path, records) }

// WriteFASTQ writes records to a FASTQ file.
func WriteFASTQ(path string, records []Record) error { return seq.WriteFASTQFile(path, records) }

// Options configures a Mapper. The zero value is not valid; start
// from DefaultOptions.
type Options struct {
	// K is the k-mer size (paper default 16).
	K int
	// W is the minimizer window size in k-mers (paper default 100).
	W int
	// Trials is the number of random sketch trials T (paper default 30).
	Trials int
	// SegmentLen is the end-segment and interval length ℓ in bases
	// (paper default 1000).
	SegmentLen int
	// Seed drives the random hash family; mapper and queries must use
	// the same seed (they do — queries are sketched by the mapper).
	Seed int64
	// Workers bounds goroutine parallelism; 0 means GOMAXPROCS.
	Workers int
	// Shards selects the serving backend: values > 1 partition the
	// frozen sketch index into that many independent shards (a
	// deterministic hash of ⟨trial, word⟩ routes each posting list to
	// exactly one shard), built concurrently and queried scatter-gather.
	// Mapping results are byte-identical to the unsharded backend for
	// any shard count; sharding parallelizes index build, save and
	// load, and bounds per-shard memory. 0 and 1 mean unsharded.
	Shards int
	// TileStride is the default stride of MapReadTiled in bases; 0
	// means SegmentLen (non-overlapping tiles).
	TileStride int
	// Memory selects how an index loaded through Open(IndexPath) is
	// held: fully decoded on the heap, served zero-copy from a shared
	// read-only file mapping, or split between the two under a resident
	// byte budget. It only affects index loads — a build from contigs is
	// always heap-resident — and only the JEMIDX06 format can be mapped;
	// older formats silently take the heap path. See docs/MEMORY.md.
	Memory Memory
	// HashOrdering switches the minimizer ordering from the paper's
	// lexicographic choice to a minimap2-style hash ordering (an
	// ablation knob; see DESIGN.md §5).
	HashOrdering bool
	// Metrics, when non-nil, is the observability registry the mapper
	// records into (counters, latency histograms, phase spans — see
	// docs/OBSERVABILITY.md). When nil the mapper creates a private
	// registry; either way Mapper.Metrics exposes it. Supplying one
	// lets a caller serve the registry (obs.Serve) before the mapper
	// exists and share it across mappers.
	Metrics *obs.Registry
}

// DefaultOptions returns the paper's software configuration:
// k=16, w=100, T=30, ℓ=1000.
func DefaultOptions() Options {
	return Options{K: 16, W: 100, Trials: 30, SegmentLen: 1000, Seed: 1}
}

func (o Options) params() sketch.Params {
	p := sketch.Params{K: o.K, W: o.W, T: o.Trials, L: o.SegmentLen, Seed: o.Seed}
	if o.HashOrdering {
		p.Order = minimizer.OrderHash
	}
	return p
}

// SegmentEnd says which end of a read a mapping concerns.
type SegmentEnd string

const (
	// PrefixEnd is the first SegmentLen bases of a read.
	PrefixEnd SegmentEnd = "prefix"
	// SuffixEnd is the last SegmentLen bases of a read.
	SuffixEnd SegmentEnd = "suffix"
)

// Mapping is one end-segment → contig result.
type Mapping struct {
	ReadIndex int        // index into the reads slice passed to MapReads
	ReadID    string     // read record ID
	End       SegmentEnd // which end segment
	Mapped    bool       // false when no contig was hit
	Contig    int        // contig index (valid when Mapped)
	ContigID  string     // contig record ID (valid when Mapped)
	// SharedTrials is the number of sketch trials in which the query
	// collided with the reported contig (the best-hit frequency).
	SharedTrials int
}

// Mapper maps long-read end segments to an indexed contig set.
type Mapper struct {
	opts    Options
	core    *core.Mapper
	contigs []Record
	reg     *obs.Registry
	met     *mapperMetrics
	// closer releases the serving backend's external resources: the
	// shardnet coordinator's connection pools for a fleet-backed
	// mapper, the index file mapping for an mmap-served one; nil when
	// the mapper holds neither.
	closer io.Closer
}

// Close releases resources held by the mapper's serving backend: a
// remote mapper's coordinator connection pools, or an mmap-served
// index's file mapping. It is a no-op returning nil for heap-resident
// local mappers. The mapper must not be queried after Close.
func (m *Mapper) Close() error {
	if m.closer != nil {
		return m.closer.Close()
	}
	return nil
}

// NewMapper indexes contigs with the JEM sketch. The contig slice is
// retained for ID lookup; sequences themselves are not kept beyond
// sketching (they alias the caller's records).
//
// The finished index is sealed: the sketch table is frozen into its
// cache-friendly sorted-array form — partitioned into opts.Shards
// independent shards when opts.Shards > 1 — and every query is served
// from it (the same layout the distributed gather step produces). A
// facade mapper therefore never gains contigs after construction.
func NewMapper(contigs []Record, opts Options) (*Mapper, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	cm, err := core.NewMapper(opts.params())
	if err != nil {
		return nil, err
	}
	reg := opts.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	met := newMapperMetrics(reg, cm)
	// Phase spans: index build = sketch the subjects, then freeze the
	// table into its serving form; a sharded freeze gets one child span
	// per shard (shards build on concurrent workers, so the spans
	// overlap and their sum exceeds the parent's wall time).
	sp := reg.Tracer().Start("index.build")
	sp.Time("sketch", func() { cm.AddSubjectsParallel(contigs, opts.Workers) })
	if opts.Shards > 1 {
		fz := sp.Child("freeze")
		cm.SealShardedTraced(opts.Shards, opts.Workers, func(shard int, fn func()) {
			fz.Time("shard"+strconv.Itoa(shard), fn)
		})
		fz.End()
	} else {
		sp.Time("freeze", func() { cm.Seal() })
	}
	sp.End()
	return &Mapper{opts: opts, core: cm, contigs: contigs, reg: reg, met: met}, nil
}

// Shards returns the number of serving shards of the underlying
// sketch index: Options.Shards for a sharded build, the on-disk shard
// count for a loaded JEMIDX05/06 index, 1 for the unsharded backend.
func (m *Mapper) Shards() int { return m.core.Shards() }

// Options returns the mapper's configuration.
func (m *Mapper) Options() Options { return m.opts }

// IndexBytes returns the approximate total size of the sealed sketch
// index in bytes (the frozen table's backing arrays; struct headers
// and allocator slack are not charged), counting resident and mapped
// bytes alike — IndexMemory splits them. A serving tier holding
// several reference indexes open at once uses this for per-index
// memory accounting (GET /v1/indexes in jem-serve).
func (m *Mapper) IndexBytes() int64 { return m.core.IndexBytes() }

// NumContigs returns the number of indexed contigs.
func (m *Mapper) NumContigs() int { return m.core.NumSubjects() }

// MapOptions carries the per-call knobs of Mapper.Map. The zero value
// maps with the mapper's construction-time settings.
type MapOptions struct {
	// Workers overrides the mapper's Workers setting for this call;
	// 0 keeps it.
	Workers int
}

// validate mirrors Options.Validate for the per-call knobs.
func (o MapOptions) validate() error {
	if o.Workers < 0 {
		return optErr("Workers", o.Workers, "must be ≥ 0 (0 means the mapper's Workers setting)")
	}
	return nil
}

// Map is the canonical batch entry point: it maps both end segments of
// every read, in parallel, and returns mappings in deterministic
// (read, end) order. Every segment produces a Mapping; unmapped
// segments have Mapped=false.
//
// When ctx is cancelled the workers stop early and the call returns
// the mappings of every read completed so far together with ctx.Err();
// a nil error means the full read set was mapped. A non-cancellation
// error means the serving index degraded mid-batch (a load-on-demand
// shard of a budgeted open failed its fault-in verification); the
// returned mappings are still well-formed but computed without the
// lost shard's postings.
func (m *Mapper) Map(ctx context.Context, reads []Record, opts MapOptions) ([]Mapping, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	workers := opts.Workers
	if workers == 0 {
		workers = m.opts.Workers
	}
	if sp := obs.SpanFromContext(ctx); sp != nil {
		c := sp.Child("map")
		c.SetAttr("reads", len(reads))
		defer c.End()
	}
	results, err := m.core.MapReadsContext(ctx, reads, m.opts.SegmentLen, workers)
	return m.convert(results, reads), err
}

func (m *Mapper) convert(results []core.Result, reads []Record) []Mapping {
	out := make([]Mapping, len(results))
	for i, r := range results {
		mp := Mapping{
			ReadIndex: int(r.ReadIndex),
			ReadID:    reads[r.ReadIndex].ID,
			End:       PrefixEnd,
		}
		if r.Kind == core.Suffix {
			mp.End = SuffixEnd
		}
		if r.Mapped() {
			mp.Mapped = true
			mp.Contig = int(r.Subject)
			mp.ContigID = m.core.Subject(r.Subject).Name
			mp.SharedTrials = int(r.Count)
		}
		out[i] = mp
	}
	return out
}

// SaveIndex serializes the mapper's sketch index (parameters, subject
// metadata, sketch table) so it can be reloaded with LoadMapper
// instead of re-sketching the contigs. The serialized form carries a
// checksum footer that LoadMapper verifies.
func (m *Mapper) SaveIndex(w io.Writer) error {
	sp := m.reg.Tracer().Start("index.write")
	defer sp.End()
	return m.core.WriteIndex(w)
}

// ErrIndexChecksum marks an index file whose contents no longer match
// the checksum it was written with — on-disk corruption. Detect it
// with errors.Is and rebuild the index from the contigs.
var ErrIndexChecksum = core.ErrIndexChecksum

// SaveIndexFile writes the index to path atomically (temp file in the
// same directory + rename), so an interrupted save can never leave a
// partial index behind.
func (m *Mapper) SaveIndexFile(path string) error {
	sp := m.reg.Tracer().Start("index.write")
	defer sp.End()
	return m.core.WriteIndexFile(path)
}

// LoadMapper reconstructs a mapper from an index written by SaveIndex.
// The loaded mapper maps identically to the original; contig sequences
// are not stored in the index, so sequence-dependent extras
// (PercentIdentity against retained contigs) need the contig records
// passed here (nil is allowed and disables only those extras).
func LoadMapper(r io.Reader, contigs []Record) (*Mapper, error) {
	return LoadMapperObserved(r, contigs, nil)
}

// LoadMapperObserved is LoadMapper recording into the given registry
// (nil creates a private one, making it identical to LoadMapper): the
// load is span-timed as index.load → read → freeze.
func LoadMapperObserved(r io.Reader, contigs []Record, reg *obs.Registry) (*Mapper, error) {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	sp := reg.Tracer().Start("index.load")
	rd := sp.Child("read")
	// A sharded (JEMIDX05/06) index decodes its shards in parallel, one
	// child span per shard under "read".
	cm, err := core.ReadIndexObserved(r, rd)
	rd.End()
	if err != nil {
		sp.End()
		return nil, err
	}
	// Serve from the frozen form regardless of what the index carried
	// (legacy JEMIDX02 and mutable-table indexes freeze here).
	sp.Time("freeze", func() { cm.Seal() })
	sp.End()
	met := newMapperMetrics(reg, cm)
	p := cm.Sketcher().Params()
	opts := Options{
		K: p.K, W: p.W, Trials: p.T, SegmentLen: p.L, Seed: p.Seed,
		HashOrdering: p.Order == minimizer.OrderHash,
		Metrics:      reg,
	}
	if sh := cm.Shards(); sh > 1 {
		opts.Shards = sh
	}
	return &Mapper{opts: opts, core: cm, contigs: contigs, reg: reg, met: met}, nil
}

// MapSegment maps a single arbitrary segment (at most SegmentLen bases
// of it are meaningful — longer inputs dilute the sketch) and returns
// the best contig index and shared-trial count. ok=false when nothing
// was hit.
func (m *Mapper) MapSegment(segment []byte) (contig, sharedTrials int, ok bool) {
	sess := m.core.NewSession()
	hit, ok := sess.MapSegment(segment)
	if !ok {
		return -1, 0, false
	}
	return int(hit.Subject), int(hit.Count), true
}

// TiledMapping is one interior-tile hit of MapReadTiled.
type TiledMapping struct {
	// Offset and Length locate the tile on the read.
	Offset, Length int
	Contig         int
	ContigID       string
	SharedTrials   int
}

// MapReadTiled maps consecutive SegmentLen-length tiles across the
// whole read (stride ≤ 0 means Options.TileStride, and non-overlapping
// tiles when that is unset too) — the extension the paper flags for
// detecting contigs contained in a read's interior, which end-segment
// mapping cannot see. Unmapped tiles are omitted.
func (m *Mapper) MapReadTiled(read []byte, stride int) []TiledMapping {
	if stride <= 0 {
		stride = m.opts.TileStride
	}
	sess := m.core.NewSession()
	tiles := sess.MapReadTiled(read, m.opts.SegmentLen, stride)
	out := make([]TiledMapping, len(tiles))
	for i, th := range tiles {
		out[i] = TiledMapping{
			Offset:       int(th.Offset),
			Length:       int(th.Length),
			Contig:       int(th.Subject),
			ContigID:     m.core.Subject(th.Subject).Name,
			SharedTrials: int(th.Count),
		}
	}
	return out
}

// ContainedContigs returns the distinct contigs hit by the read's
// interior tiles (excluding the two end tiles) — candidates for
// contigs wholly contained in the read.
func (m *Mapper) ContainedContigs(read []byte) []int {
	sess := m.core.NewSession()
	ids := sess.ContainedSubjects(read, m.opts.SegmentLen)
	out := make([]int, len(ids))
	for i, id := range ids {
		out[i] = int(id)
	}
	return out
}

// TopHits returns up to k candidate contigs for a segment ordered by
// descending shared-trial count — the paper's proposed top-x
// extension.
func (m *Mapper) TopHits(segment []byte, k int) []Mapping {
	sess := m.core.NewSession()
	hits := sess.MapSegmentTopK(segment, k)
	out := make([]Mapping, len(hits))
	for i, h := range hits {
		out[i] = Mapping{
			Mapped:       true,
			Contig:       int(h.Subject),
			ContigID:     m.core.Subject(h.Subject).Name,
			SharedTrials: int(h.Count),
		}
	}
	return out
}

// tsvHeader is the first line of every TSV mapping table.
const tsvHeader = "read_id\tend\tcontig_id\tshared_trials\n"

// appendTSVRow renders one mapping as a TSV row into b — the
// allocation-free formatter shared by WriteTSV and the Stream
// writer hot loop (fmt.Fprintf there cost ~2 allocations per row).
//
//jem:hotpath
func appendTSVRow(b []byte, m *Mapping) []byte {
	b = append(b, m.ReadID...)
	b = append(b, '\t')
	b = append(b, string(m.End)...)
	b = append(b, '\t')
	if m.Mapped {
		b = append(b, m.ContigID...)
		b = append(b, '\t')
		b = strconv.AppendInt(b, int64(m.SharedTrials), 10)
	} else {
		b = append(b, '*', '\t', '0')
	}
	return append(b, '\n')
}

// WriteTSV writes mappings as a tab-separated table with a header:
// read_id, end, contig_id, shared_trials ("*" marks unmapped rows).
func WriteTSV(w io.Writer, mappings []Mapping) error {
	if _, err := io.WriteString(w, tsvHeader); err != nil {
		return err
	}
	buf := make([]byte, 0, 128)
	for i := range mappings {
		buf = appendTSVRow(buf[:0], &mappings[i])
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}
