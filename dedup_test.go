package jem_test

import (
	"math/rand"
	"testing"

	"repro"
)

func TestDeduplicateContigs(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	bases := []byte("ACGT")
	dna := func(n int) []byte {
		s := make([]byte, n)
		for i := range s {
			s[i] = bases[rng.Intn(4)]
		}
		return s
	}
	big1 := dna(20_000)
	big2 := dna(20_000)
	contained := append([]byte(nil), big1[5_000:9_000]...) // exact containment
	nearDup := append([]byte(nil), big2...)                // near-duplicate of big2
	for i := 0; i < len(nearDup); i += 997 {
		nearDup[i] = bases[rng.Intn(4)]
	}
	unique := dna(6_000)

	contigs := []jem.Record{
		{ID: "big1", Seq: big1},
		{ID: "big2", Seq: big2},
		{ID: "contained", Seq: contained},
		{ID: "neardup", Seq: nearDup},
		{ID: "unique", Seq: unique},
	}
	kept, dropped, err := jem.DeduplicateContigs(contigs, jem.DefaultOptions(), jem.DedupOptions{})
	if err != nil {
		t.Fatal(err)
	}
	keptIDs := map[string]bool{}
	for _, r := range kept {
		keptIDs[r.ID] = true
	}
	if !keptIDs["big1"] || !keptIDs["big2"] || !keptIDs["unique"] {
		t.Errorf("dropped a non-redundant contig; kept = %v", keptIDs)
	}
	if keptIDs["contained"] {
		t.Error("contained contig survived")
	}
	if keptIDs["neardup"] {
		t.Error("near-duplicate survived")
	}
	if len(dropped) != 2 {
		t.Errorf("dropped = %v", dropped)
	}
}

func TestDeduplicateKeepsOneOfIdenticalPair(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	bases := []byte("ACGT")
	s := make([]byte, 8000)
	for i := range s {
		s[i] = bases[rng.Intn(4)]
	}
	contigs := []jem.Record{
		{ID: "a", Seq: s},
		{ID: "b", Seq: append([]byte(nil), s...)},
	}
	kept, dropped, err := jem.DeduplicateContigs(contigs, jem.DefaultOptions(), jem.DedupOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(kept) != 1 || len(dropped) != 1 {
		t.Fatalf("kept %d dropped %d", len(kept), len(dropped))
	}
}

func TestDeduplicateNoFalsePositivesOnAssembly(t *testing.T) {
	// A real (error-free-ish) assembly from a non-repetitive genome
	// should lose almost nothing.
	ds := buildSmallDataset(t)
	kept, dropped, err := jem.DeduplicateContigs(ds.Contigs, jem.DefaultOptions(), jem.DedupOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(dropped) > len(ds.Contigs)/10 {
		t.Errorf("dedup dropped %d of %d contigs from a clean assembly", len(dropped), len(ds.Contigs))
	}
	if len(kept)+len(dropped) != len(ds.Contigs) {
		t.Error("kept+dropped != total")
	}
}
